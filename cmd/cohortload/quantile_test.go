package main

import "testing"

// TestQuantUSInterpolates pins the fix for the small-sample quantile bug:
// the old truncating index (int(q*(n-1))) collapsed p50 and p99 onto the
// same order statistic at small n, so single-tenant runs reported
// session_p50_ms == session_p99_ms. Quantiles now interpolate linearly
// between adjacent order statistics.
func TestQuantUSInterpolates(t *testing.T) {
	// Two samples, 1ms and 2ms: p50 must land midway, p99 near the max —
	// and crucially NOT on the same value.
	ns := []int64{1_000_000, 2_000_000}
	p50 := quantUS(ns, 0.50)
	p99 := quantUS(ns, 0.99)
	if p50 == p99 {
		t.Fatalf("p50 == p99 == %v us at n=2 — truncating quantile regressed", p50)
	}
	if p50 != 1500 {
		t.Errorf("p50 = %v us, want 1500 (midpoint)", p50)
	}
	if p99 != 1990 {
		t.Errorf("p99 = %v us, want 1990 (99%% of the way to max)", p99)
	}

	// Exact order statistics still land exactly.
	five := []int64{1000, 2000, 3000, 4000, 5000}
	if got := quantUS(five, 0.50); got != 3 {
		t.Errorf("p50 of 5 = %v us, want 3", got)
	}
	if got := quantUS(five, 1.0); got != 5 {
		t.Errorf("p100 = %v us, want max 5", got)
	}
	if got := quantUS(five, 0); got != 1 {
		t.Errorf("p0 = %v us, want min 1", got)
	}

	// Degenerate inputs stay safe.
	if got := quantUS(nil, 0.5); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
	if got := quantUS([]int64{7000}, 0.99); got != 7 {
		t.Errorf("single sample p99 = %v us, want 7", got)
	}
}

// TestQuantUSUnsortedInput: quantUS sorts its input — arrival order must
// not matter.
func TestQuantUSUnsortedInput(t *testing.T) {
	ns := []int64{5_000_000, 1_000_000, 3_000_000}
	if got := quantUS(ns, 0.5); got != 3000 {
		t.Errorf("median of unsorted = %v us, want 3000", got)
	}
}
