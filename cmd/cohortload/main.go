// Command cohortload is an open-loop load generator for a cohortd daemon: it
// drives configurable tenant mixes of concurrent sessions with Poisson
// arrivals and reports per-block and per-session latency quantiles
// (p50/p99/p999) plus goodput, in both benchstat-compatible text and a JSON
// report (BENCH_serve.json).
//
// Open loop means arrivals are scheduled by the clock, not by completions: a
// batch's latency is measured from its *scheduled* arrival time, so server
// queueing delay — including the sender's own inability to keep up — counts
// against the server instead of silently throttling the workload (the
// coordinated-omission trap of closed-loop generators). -rate 0 disables
// pacing and measures saturation goodput instead.
//
// Each arrival is one -batch-word request. The batched client packs every
// arrival due at wake-up into one zero-copy Data frame (up to -coalesce
// arrivals, via SendN); the legacy client — like the pre-change stack — must
// send one copy-framed write per arrival.
//
// With -spawn (the default when -addr is empty) the daemon runs in-process
// on a loopback listener; -compare then runs the same workload twice — once
// over the pre-coalescing legacy wire path (legacy codec, per-block
// scheduler handoff, polling pumps), once over the batched zero-copy path —
// and reports the goodput speedup.
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"cohort"
	"cohort/client"
	"cohort/internal/sched"
	"cohort/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cohortload: ")
	var cfg runConfig
	flag.StringVar(&cfg.addr, "addr", "", "drive external daemons: one address (a cohortd, or a cohortgw front door) or a comma-separated shard list to spread sessions round-robin (empty: spawn one in-process)")
	flag.StringVar(&cfg.accel, "accel", "echo", "accelerator to open sessions on (spawned daemons add \"echo\" with -block geometry)")
	flag.IntVar(&cfg.block, "block", 64, "echo accelerator block size in words (spawned daemons only)")
	flag.IntVar(&cfg.tenants, "tenants", 4, "concurrent tenant sessions")
	flag.IntVar(&cfg.batch, "batch", 64, "words per arrival (one open-loop request)")
	flag.IntVar(&cfg.coalesce, "coalesce", 64, "batched client: max due arrivals packed per Data frame via SendN (the legacy client sends one frame per arrival)")
	flag.Float64Var(&cfg.rate, "rate", 0, "aggregate Poisson arrival rate in batches/sec across all tenants (0: unthrottled saturation)")
	flag.DurationVar(&cfg.duration, "duration", 3*time.Second, "send window per run")
	flag.IntVar(&cfg.engines, "engines", 2, "spawned daemon: engine pool size")
	flag.IntVar(&cfg.quantum, "quantum", 64, "spawned daemon: blocks per scheduling decision")
	flag.DurationVar(&cfg.switchCost, "switch-cost", 0, "spawned daemon: modeled CSR-swap cost per session switch")
	flag.IntVar(&cfg.queueCap, "queue-cap", 16384, "spawned daemon: per-direction session queue capacity in words")
	flag.Int64Var(&cfg.seed, "seed", 1, "arrival-process RNG seed")
	legacy := flag.Bool("legacy", false, "use the pre-coalescing legacy codec (single run)")
	compare := flag.Bool("compare", false, "run legacy then batched against spawned daemons and report the speedup")
	ab := flag.String("ab", "", "static-vs-adaptive A/B over the same Poisson trace and a skewed tenant mix, e.g. \"static,adaptive\" (modes: static, static:q=N, adaptive); spawned daemons only")
	abOut := flag.String("ab-report", "BENCH_adaptive.json", "A/B report path (empty: skip)")
	out := flag.String("o", "BENCH_serve.json", "JSON report path (empty: skip)")
	latOut := flag.String("latency-report", "BENCH_latency.json", "decomposed server-stage latency report path (empty: skip; batched runs only)")
	sloP99 := flag.Duration("slo-p99", 0, "SLO verdict mode: fail (exit 1) if the final run's end-to-end block p99 exceeds this (0: off)")
	flag.Parse()

	if cfg.batch%cfg.block != 0 {
		log.Fatalf("-batch %d must be a multiple of -block %d", cfg.batch, cfg.block)
	}
	if cfg.coalesce < 1 {
		log.Fatal("-coalesce must be >= 1")
	}
	if *compare && cfg.addr != "" {
		log.Fatal("-compare needs spawned daemons; drop -addr")
	}
	if *ab != "" {
		if cfg.addr != "" {
			log.Fatal("-ab needs spawned daemons; drop -addr")
		}
		fmt.Printf("goos: %s\ngoarch: %s\npkg: cohort/cmd/cohortload\n", runtime.GOOS, runtime.GOARCH)
		if err := runAB(cfg, *ab, *abOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("goos: %s\ngoarch: %s\npkg: cohort/cmd/cohortload\n", runtime.GOOS, runtime.GOARCH)
	var runs []runResult
	if *compare {
		for _, mode := range []bool{true, false} {
			r, err := oneRun(cfg, mode)
			if err != nil {
				log.Fatal(err)
			}
			runs = append(runs, r)
		}
	} else {
		r, err := oneRun(cfg, *legacy)
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, r)
	}

	report := benchReport{
		Benchmark:     "cohortload",
		GeneratedUnix: time.Now().Unix(),
		Config: reportConfig{
			Accel: cfg.accel, Block: cfg.block, Batch: cfg.batch, Coalesce: cfg.coalesce,
			Tenants: cfg.tenants, RateHz: cfg.rate, DurationS: cfg.duration.Seconds(),
			Engines: cfg.engines, Quantum: cfg.quantum, QueueCap: cfg.queueCap,
		},
		Runs: runs,
	}
	if len(runs) == 2 && runs[0].Mode == "legacy" {
		report.SpeedupGoodput = round2(runs[1].GoodputWordsPerS / runs[0].GoodputWordsPerS)
		fmt.Printf("\nspeedup: %.2fx goodput (batched %.1f MiB/s over legacy %.1f MiB/s)\n",
			report.SpeedupGoodput, runs[1].GoodputMiBPerS, runs[0].GoodputMiBPerS)
	}
	if *sloP99 > 0 {
		// Verdict mode: judge the final run (the batched one under -compare)
		// against the block-p99 objective, record the outcome in the report,
		// and exit non-zero on breach so CI can gate on it.
		final := runs[len(runs)-1]
		report.SLO = &sloVerdict{
			TargetP99Us:   round2(float64(*sloP99) / 1e3),
			ObservedP99Us: final.BlockP99us,
			Mode:          final.Mode,
			Pass:          final.BlockP99us <= float64(*sloP99)/1e3,
		}
	}
	if *out != "" {
		writeJSON(*out, report)
		fmt.Printf("report: %s\n", *out)
	}
	if *latOut != "" {
		// Standalone decomposed-latency artifact: the last run with a server
		// stage breakdown (the batched run in -compare), paired with its
		// end-to-end quantiles so a checker can assert stage-sum ≤ e2e.
		for i := len(runs) - 1; i >= 0; i-- {
			if runs[i].ServerStages == nil {
				continue
			}
			writeJSON(*latOut, latencyReport{
				Benchmark:     "cohortload/latency",
				GeneratedUnix: time.Now().Unix(),
				Mode:          runs[i].Mode,
				BlockP50Us:    runs[i].BlockP50us,
				BlockP99Us:    runs[i].BlockP99us,
				Stages:        runs[i].ServerStages,
			})
			fmt.Printf("latency report: %s\n", *latOut)
			break
		}
	}
	if report.SLO != nil {
		v := report.SLO
		if v.Pass {
			fmt.Printf("slo verdict: PASS (%s block p99 %.1fµs <= target %.1fµs)\n",
				v.Mode, v.ObservedP99Us, v.TargetP99Us)
		} else {
			fmt.Printf("slo verdict: FAIL (%s block p99 %.1fµs > target %.1fµs)\n",
				v.Mode, v.ObservedP99Us, v.TargetP99Us)
			os.Exit(1)
		}
	}
}

// latencyReport is the BENCH_latency.json document: one run's server-side
// stage decomposition next to the end-to-end quantiles it must fit inside.
type latencyReport struct {
	Benchmark     string        `json:"benchmark"`
	GeneratedUnix int64         `json:"generated_unix"`
	Mode          string        `json:"mode"`
	BlockP50Us    float64       `json:"block_p50_us"`
	BlockP99Us    float64       `json:"block_p99_us"`
	Stages        *serverStages `json:"stages"`
}

func writeJSON(path string, v any) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

type runConfig struct {
	addr       string
	accel      string
	block      int
	tenants    int
	batch      int
	coalesce   int
	rate       float64
	duration   time.Duration
	engines    int
	quantum    int
	switchCost time.Duration
	queueCap   int
	seed       int64
}

type reportConfig struct {
	Accel     string  `json:"accel"`
	Block     int     `json:"block_words"`
	Batch     int     `json:"batch_words"`
	Coalesce  int     `json:"coalesce_arrivals"`
	Tenants   int     `json:"tenants"`
	RateHz    float64 `json:"rate_hz"`
	DurationS float64 `json:"duration_s"`
	Engines   int     `json:"engines"`
	Quantum   int     `json:"quantum"`
	QueueCap  int     `json:"queue_cap_words"`
}

type runResult struct {
	Mode             string  `json:"mode"` // "legacy" or "batched"
	Blocks           uint64  `json:"blocks"`
	Words            uint64  `json:"words"`
	ElapsedS         float64 `json:"elapsed_s"`
	GoodputWordsPerS float64 `json:"goodput_words_per_s"`
	GoodputMiBPerS   float64 `json:"goodput_mib_per_s"`
	BlockP50us       float64 `json:"block_p50_us"`
	BlockP99us       float64 `json:"block_p99_us"`
	BlockP999us      float64 `json:"block_p999_us"`
	SessionP50ms     float64 `json:"session_p50_ms"`
	SessionP99ms     float64 `json:"session_p99_ms"`
	// ServerStages decomposes where the server-resident time went (batched
	// runs only: the clients opt into wire telemetry and the daemon's sampled
	// stage attribution fills it). Comparing ServerMeanUs against the
	// end-to-end block quantiles splits latency into server-resident vs
	// network + client-side cost.
	ServerStages *serverStages `json:"server_stages,omitempty"`
	// Shards attributes the run per target address when -addr named more
	// than one daemon — the fleet view: aggregate goodput above, who served
	// what below.
	Shards []shardGoodput `json:"shards,omitempty"`
}

// shardGoodput is one target daemon's slice of a multi-address run.
type shardGoodput struct {
	Addr           string  `json:"addr"`
	Sessions       int     `json:"sessions"`
	Blocks         uint64  `json:"blocks"`
	Words          uint64  `json:"words"`
	GoodputMiBPerS float64 `json:"goodput_mib_per_s"`
}

// stageAgg is one stage aggregated across every tenant session of a run:
// samples-weighted mean, worst per-session p99.
type stageAgg struct {
	Samples uint64  `json:"samples"`
	MeanUs  float64 `json:"mean_us"`
	P99Us   float64 `json:"p99_us"`
}

// serverStages is a run's server-side latency decomposition, aggregated from
// the per-session Telemetry documents the daemon sent back.
type serverStages struct {
	Sessions     int      `json:"sessions"` // sessions that reported timing
	Queue        stageAgg `json:"queue"`
	Sched        stageAgg `json:"sched"`
	Compute      stageAgg `json:"compute"`
	Wire         stageAgg `json:"wire"`
	ServerMeanUs float64  `json:"server_mean_us"` // sum of the four stage means
}

// aggregateStages folds per-session telemetry into one run-level breakdown.
func aggregateStages(ts []*wire.TelemetryReply) *serverStages {
	if len(ts) == 0 {
		return nil
	}
	agg := &serverStages{Sessions: len(ts)}
	acc := func(dst *stageAgg, st wire.StageTiming) {
		dst.Samples += st.Samples
		dst.MeanUs += st.MeanNs * float64(st.Samples) // ns-sum until fin
		if p := st.P99Ns / 1e3; p > dst.P99Us {
			dst.P99Us = round2(p)
		}
	}
	for _, t := range ts {
		acc(&agg.Queue, t.Queue)
		acc(&agg.Sched, t.Sched)
		acc(&agg.Compute, t.Compute)
		acc(&agg.Wire, t.Wire)
	}
	fin := func(dst *stageAgg) {
		if dst.Samples > 0 {
			dst.MeanUs = round2(dst.MeanUs / float64(dst.Samples) / 1e3)
		}
	}
	fin(&agg.Queue)
	fin(&agg.Sched)
	fin(&agg.Compute)
	fin(&agg.Wire)
	agg.ServerMeanUs = round2(agg.Queue.MeanUs + agg.Sched.MeanUs + agg.Compute.MeanUs + agg.Wire.MeanUs)
	return agg
}

type benchReport struct {
	Benchmark      string       `json:"benchmark"`
	GeneratedUnix  int64        `json:"generated_unix"`
	Config         reportConfig `json:"config"`
	Runs           []runResult  `json:"runs"`
	SpeedupGoodput float64      `json:"speedup_goodput,omitempty"`
	SLO            *sloVerdict  `json:"slo,omitempty"`
}

// sloVerdict records the -slo-p99 judgment on the final run: the open-loop
// end-to-end block p99 (which charges queueing from the *scheduled* arrival
// time, so a saturated server fails honestly) against the target. A FAIL also
// exits the process with status 1.
type sloVerdict struct {
	Mode          string  `json:"mode"`
	TargetP99Us   float64 `json:"target_p99_us"`
	ObservedP99Us float64 `json:"observed_p99_us"`
	Pass          bool    `json:"pass"`
}

// echoAccel is the load-generator geometry knob: a block pass-through of
// -block words, so wire/scheduler cost dominates and compute does not.
type echoAccel struct{ out []cohort.Word }

func newEcho(block int) *echoAccel { return &echoAccel{out: make([]cohort.Word, block)} }

func (e *echoAccel) Name() string  { return "echo" }
func (e *echoAccel) InWords() int  { return len(e.out) }
func (e *echoAccel) OutWords() int { return len(e.out) }

// Configure accepts an optional 8-byte little-endian block size, so one
// daemon can serve tenants with different echo geometries (the A/B harness
// mixes small latency-sensitive blocks with large throughput blocks through
// client.Options.CSR). An empty CSR keeps the daemon's -block default.
func (e *echoAccel) Configure(csr []byte) error {
	if len(csr) == 0 {
		return nil
	}
	if len(csr) != 8 {
		return fmt.Errorf("echo csr: want 8 bytes, got %d", len(csr))
	}
	n := int(binary.LittleEndian.Uint64(csr))
	if n < 1 || n > wire.MaxFrameWords {
		return fmt.Errorf("echo csr: block size %d out of range [1, %d]", n, wire.MaxFrameWords)
	}
	e.out = make([]cohort.Word, n)
	return nil
}

// echoCSR encodes a block size for Configure.
func echoCSR(block int) []byte {
	csr := make([]byte, 8)
	binary.LittleEndian.PutUint64(csr, uint64(block))
	return csr
}

func (e *echoAccel) Process(in []cohort.Word) ([]cohort.Word, error) {
	copy(e.out, in)
	return e.out, nil
}

// spawnDaemon brings up an in-process scheduler + wire server on a loopback
// listener, with the default catalog plus the echo geometry.
func spawnDaemon(cfg runConfig, legacy bool) (addr string, stop func(), err error) {
	s := sched.New(sched.Config{
		Engines: cfg.engines, Quantum: cfg.quantum, QueueCap: cfg.queueCap,
		SwitchCost:  cfg.switchCost,
		MaxSessions: 2*cfg.tenants + 8,
	})
	cat := sched.DefaultCatalog()
	blk := cfg.block
	cat["echo"] = func() (cohort.Accelerator, error) { return newEcho(blk), nil }
	sv := sched.NewServer(s, cat)
	sv.LegacyWire = legacy
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return "", nil, err
	}
	go sv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on stop
	return ln.Addr().String(), func() { sv.Close(); s.Close() }, nil
}

// batchRec tracks one in-flight arrival: when it was *scheduled* to arrive
// (the open-loop latency origin) and how many result words retire it.
type batchRec struct {
	due   time.Time
	words int
}

// oneRun drives the full tenant mix for one send window and aggregates the
// samples. legacy selects both the daemon's legacy wire path (spawned only)
// and the client's legacy codec, so the pair measured is the honest
// pre-change stack.
func oneRun(cfg runConfig, legacy bool) (runResult, error) {
	// -addr may name several daemons (a shard fleet driven directly): workers
	// spread round-robin so every shard sees load and the report attributes
	// goodput per shard. One address — a single daemon or a gateway — is the
	// degenerate case of the same path.
	addrs := splitAddrs(cfg.addr)
	if len(addrs) == 0 {
		a, stop, err := spawnDaemon(cfg, legacy)
		if err != nil {
			return runResult{}, err
		}
		defer stop()
		addrs = []string{a}
	}

	mode := "batched"
	if legacy {
		mode = "legacy"
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		blockLat []int64 // ns, decimated
		sessLat  []int64 // ns
		words    uint64
		blocks   uint64
		timings  []*wire.TelemetryReply
	)
	tallies := make(map[string]*shardGoodput, len(addrs))
	for _, a := range addrs {
		tallies[a] = &shardGoodput{Addr: a}
	}
	start := time.Now()
	perSess := cfg.rate / float64(cfg.tenants)
	for i := 0; i < cfg.tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &worker{
				cfg: cfg, addr: addrs[i%len(addrs)], legacy: legacy,
				tenant: fmt.Sprintf("load-%d", i),
				rng:    rand.New(rand.NewSource(cfg.seed + int64(i))),
				rate:   perSess,
			}
			err := w.run()
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("tenant %s: %w", w.tenant, err)
			}
			blockLat = append(blockLat, w.lat.vals...)
			sessLat = append(sessLat, int64(w.sessDur))
			words += w.words
			blocks += w.blocks
			t := tallies[w.addr]
			t.Sessions++
			t.Blocks += w.blocks
			t.Words += w.words
			if w.timing != nil {
				timings = append(timings, w.timing)
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return runResult{}, firstErr
	}
	elapsed := time.Since(start)

	res := runResult{
		Mode: mode, Blocks: blocks, Words: words,
		ElapsedS:         round4(elapsed.Seconds()),
		GoodputWordsPerS: round2(float64(words) / elapsed.Seconds()),
		GoodputMiBPerS:   round2(float64(words) * 8 / (1 << 20) / elapsed.Seconds()),
		BlockP50us:       quantUS(blockLat, 0.50),
		BlockP99us:       quantUS(blockLat, 0.99),
		BlockP999us:      quantUS(blockLat, 0.999),
		SessionP50ms:     round4(quantUS(sessLat, 0.50) / 1e3),
		SessionP99ms:     round4(quantUS(sessLat, 0.99) / 1e3),
		ServerStages:     aggregateStages(timings),
	}
	if len(addrs) > 1 {
		// Fleet attribution: per-shard goodput next to the aggregate, in the
		// order the shards were named.
		for _, a := range addrs {
			t := tallies[a]
			t.GoodputMiBPerS = round2(float64(t.Words) * 8 / (1 << 20) / elapsed.Seconds())
			res.Shards = append(res.Shards, *t)
		}
	}
	// benchstat-compatible: one line per run, ns/op is per block served.
	coalesce := cfg.coalesce
	if legacy {
		coalesce = 1
	}
	nsPerBlock := float64(elapsed.Nanoseconds()) / float64(max(blocks, 1))
	fmt.Printf("BenchmarkServe/mode=%s/block=%d/batch=%d/coalesce=%d/tenants=%d \t%8d\t%12.1f ns/op\t%10.2f MB/s\t%10.1f p99-us\n",
		mode, cfg.block, cfg.batch, coalesce, cfg.tenants, blocks, nsPerBlock,
		float64(words)*8/1e6/elapsed.Seconds(), res.BlockP99us)
	if sg := res.ServerStages; sg != nil {
		// Decomposed e2e latency: the server-resident stage means (sampled
		// per quantum) versus the client's open-loop block quantiles. The
		// remainder is network transit + client-side time + unsampled skew.
		fmt.Printf("  server stages (%d sessions reporting):\n", sg.Sessions)
		for _, row := range []struct {
			name string
			a    stageAgg
		}{{"queue", sg.Queue}, {"sched", sg.Sched}, {"compute", sg.Compute}, {"wire", sg.Wire}} {
			fmt.Printf("    %-8s mean %9.2f us   p99 %9.2f us   (n=%d)\n",
				row.name, row.a.MeanUs, row.a.P99Us, row.a.Samples)
		}
		fmt.Printf("    %-8s mean %9.2f us   vs e2e block p50 %.2f us / p99 %.2f us\n",
			"server", sg.ServerMeanUs, res.BlockP50us, res.BlockP99us)
	}
	for _, t := range res.Shards {
		fmt.Printf("  shard %-24s sessions %3d  blocks %10d  %8.2f MiB/s\n",
			t.Addr, t.Sessions, t.Blocks, t.GoodputMiBPerS)
	}
	return res, nil
}

// splitAddrs parses the -addr list, dropping empty entries.
func splitAddrs(spec string) []string {
	var out []string
	for _, a := range strings.Split(spec, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

type worker struct {
	cfg     config // alias below keeps the struct readable
	addr    string
	legacy  bool
	tenant  string
	csr     []byte // optional accelerator CSR (echo: block-size override)
	rng     *rand.Rand
	rate    float64 // arrivals/sec for this session; 0 = unthrottled
	lat     sampler
	sessDur time.Duration
	words   uint64
	blocks  uint64
	timing  *wire.TelemetryReply // final server-side stage breakdown (batched runs)
}

type config = runConfig

// run opens one session, paces batches through it for the send window, then
// drains to Done. The receive side runs concurrently so backpressure is the
// server's, not the harness's.
func (w *worker) run() error {
	// Batched runs opt into server-side timing; the legacy run must stay the
	// faithful pre-change stack, which had no telemetry.
	c, err := client.Connect(w.addr, client.Options{
		Tenant: w.tenant, Accel: w.cfg.accel, CSR: w.csr, LegacyCodec: w.legacy,
		ServerTiming: !w.legacy,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	t0 := time.Now()

	// Pending batches flow sender→receiver in send order; the channel is the
	// in-flight window bookkeeping, not a throttle (capacity well beyond what
	// queue + socket backpressure admits).
	pending := make(chan batchRec, 1<<16)
	recvErr := make(chan error, 1)
	go func() { recvErr <- w.receive(c, pending) }()

	in := make([]cohort.Word, w.cfg.batch)
	for i := range in {
		in[i] = cohort.Word(i)*2654435761 + 99
	}
	deadline := t0.Add(w.cfg.duration)
	next := t0
	dues := make([]time.Time, 0, w.cfg.coalesce)
	segs := make([][]cohort.Word, 0, w.cfg.coalesce)
	var sendErr error
	for time.Now().Before(deadline) {
		// Collect the arrivals due this pass. Paced mode sleeps to the next
		// Poisson arrival, then also picks up any backlog already due — the
		// schedule never slips, so a late sender measures as server latency.
		// Saturation mode (-rate 0) treats a full coalesce window as due.
		dues = dues[:0]
		if w.rate > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			now := time.Now()
			for !next.After(now) && len(dues) < w.cfg.coalesce {
				dues = append(dues, next)
				next = next.Add(time.Duration(w.rng.ExpFloat64() / w.rate * float64(time.Second)))
			}
		} else {
			now := time.Now()
			for len(dues) < w.cfg.coalesce {
				dues = append(dues, now)
			}
		}
		if w.rate > 0 {
			for _, due := range dues {
				pending <- batchRec{due: due, words: w.cfg.batch}
			}
		} else {
			// Saturation arrivals in one pass share a due stamp: one record
			// covers them all (the receiver tracks words, not frames).
			pending <- batchRec{due: dues[0], words: w.cfg.batch * len(dues)}
		}
		if w.legacy {
			// The pre-change client has no frame coalescing: one copy-framed
			// send — one frame, one write — per arrival.
			for range dues {
				if err := c.Send(in); err != nil {
					sendErr = err
					break
				}
			}
		} else {
			// The batched client packs every due arrival into one zero-copy
			// Data frame (SendN gathers the segments with a single writev).
			segs = segs[:0]
			for range dues {
				segs = append(segs, in)
			}
			sendErr = c.SendN(segs...)
		}
		if sendErr != nil {
			break
		}
	}
	if err := c.CloseSend(); err != nil && sendErr == nil {
		sendErr = err
	}
	close(pending)
	if err := <-recvErr; err != nil {
		return err
	}
	w.sessDur = time.Since(t0)
	if sendErr != nil {
		return sendErr
	}
	if res := c.Result(); res == nil || res.Err != "" {
		return fmt.Errorf("session did not finish cleanly: %+v", res)
	}
	w.timing = c.LastServerTiming()
	return nil
}

// receive drains results, retiring pending batches in order and recording
// one latency sample per completed block (stamped when its last word lands).
func (w *worker) receive(c *client.Conn, pending <-chan batchRec) error {
	buf := make([]cohort.Word, 1<<16)
	var cur batchRec
	rem, into := 0, 0 // words left in cur; words already landed in cur
	for {
		n, err := c.RecvInto(buf)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		now := time.Now()
		w.words += uint64(n)
		for n > 0 {
			if rem == 0 {
				cur = <-pending
				rem, into = cur.words, 0
			}
			take := min(n, rem)
			done := (into+take)/w.cfg.block - into/w.cfg.block
			lat := now.Sub(cur.due).Nanoseconds()
			for i := 0; i < done; i++ {
				w.lat.add(lat)
			}
			w.blocks += uint64(done)
			into += take
			rem -= take
			n -= take
		}
	}
}

// sampler keeps a memory-bounded, time-uniform subset of latency samples:
// when full it drops every other retained sample and doubles its stride.
type sampler struct {
	vals   []int64
	stride int
	skip   int
}

const samplerCap = 1 << 20

func (sp *sampler) add(v int64) {
	if sp.stride == 0 {
		sp.stride = 1
	}
	if sp.skip > 0 {
		sp.skip--
		return
	}
	sp.skip = sp.stride - 1
	if len(sp.vals) == samplerCap {
		keep := sp.vals[:0]
		for i := 0; i < len(sp.vals); i += 2 {
			keep = append(keep, sp.vals[i])
		}
		sp.vals = keep
		sp.stride *= 2
		sp.skip = sp.stride - 1
	}
	sp.vals = append(sp.vals, v)
}

// quantUS returns the q-quantile of ns samples in microseconds, linearly
// interpolated between the neighboring order statistics. Interpolation is
// what makes small sample sets honest: the old truncating index collapsed
// every quantile onto the same sample below ~1/(1-q) samples — with two
// tenants, session p50 and p99 both returned ns[0] and the report showed
// them identical (BENCH_serve.json once shipped 3011.7449 for both).
func quantUS(ns []int64, q float64) float64 {
	if len(ns) == 0 {
		return 0
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	pos := q * float64(len(ns)-1)
	lo := int(pos)
	v := float64(ns[lo])
	if frac := pos - float64(lo); frac > 0 && lo+1 < len(ns) {
		v += frac * float64(ns[lo+1]-ns[lo])
	}
	return round2(v / 1e3)
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
func round4(v float64) float64 { return float64(int64(v*1e4+0.5)) / 1e4 }
