// Command cohortchaos runs the seeded chaos harness against an in-process
// cohortd: a deterministic randomized fleet of faulting tenant streams over
// real client connections, verified against a local integrity oracle and the
// serving stack's containment invariants. CI runs it twice with the same
// seed and diffs the "schedule fingerprint:" lines to pin determinism.
//
//	cohortchaos -seed 1 -duration 10s
//
// Exit status 0 and a final "chaos ok: ..." line mean every stream's output
// matched the oracle bit-for-bit and every invariant held; any violation is
// listed and the exit status is 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"cohort/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 1, "schedule seed; same seed + duration = same schedule")
	duration := flag.Duration("duration", 10*time.Second, "fleet scale (one stream per ~30ms, clamped)")
	workers := flag.Int("workers", 8, "concurrent client streams")
	quiet := flag.Bool("q", false, "suppress progress narration")
	flag.Parse()

	var log io.Writer
	if !*quiet {
		log = os.Stdout
	}
	rep, err := chaos.Run(chaos.Config{
		Seed: *seed, Duration: *duration, Workers: *workers, Log: log,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cohortchaos:", err)
		os.Exit(1)
	}
	if *quiet {
		// The fingerprint is the determinism contract; always print it.
		fmt.Printf("schedule fingerprint: %s\n", rep.Fingerprint)
	}
	for _, f := range rep.Failures {
		fmt.Fprintln(os.Stderr, "FAIL:", f)
	}
	fmt.Println(rep.Summary())
	if !rep.OK() {
		os.Exit(1)
	}
}
