// Command cohortsoc boots the simulated 4-tile SoC (Figure 2: two cores,
// an AES Cohort tile and a SHA Cohort tile), runs the Figure 5
// encrypt-then-hash pipeline through chained hardware engines, verifies the
// result against a software reference, and dumps the performance counters —
// a guided tour of the full stack.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"cohort"
	"cohort/internal/accel"
	"cohort/internal/bench"
	"cohort/internal/cpu"
	"cohort/internal/obsrv"
	"cohort/internal/osmodel"
	"cohort/internal/soc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cohortsoc: ")
	blocks := flag.Int("blocks", 16, "number of 64-byte blocks to stream")
	batch := flag.Int("batch", 64, "software batching factor")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file")
	metrics := flag.Bool("metrics", false, "also dump cache, MMIO-port and per-engine detail counters")
	serveAddr := flag.String("serve", "",
		"after the run, serve /metrics, /trace and /debug/pprof on this address (e.g. :9121) until interrupted")
	flag.Parse()

	s := soc.New(soc.DefaultConfig())
	if *tracePath != "" || *serveAddr != "" {
		s.K.EnableTracing()
	}
	core := s.AddCore(0)
	s.AddCore(1)
	aesEng := s.AddEngine(2, accel.NewAESDevice(), 0)
	shaEng := s.AddEngine(3, accel.NewSHADevice(), 0)
	kern := osmodel.New(s)
	pr, err := kern.NewProcess()
	if err != nil {
		log.Fatal(err)
	}
	pr.AttachCore(core)

	n := *blocks * 8 // words
	encryptQ, err := pr.AllocQueue(8, uint64(n))
	if err != nil {
		log.Fatal(err)
	}
	hashQ, err := pr.AllocQueue(8, uint64(n))
	if err != nil {
		log.Fatal(err)
	}
	resultQ, err := pr.AllocQueue(8, uint64(n))
	if err != nil {
		log.Fatal(err)
	}

	data := make([]byte, n*8)
	for i := range data {
		data[i] = byte(i*37 + 11)
	}
	var digests []uint64
	var cycles uint64
	var ipc float64
	core.Run("app", func(ctx *cpu.Ctx) {
		if err := kern.RegisterCohort(ctx, pr, aesEng, encryptQ.Desc, hashQ.Desc, osmodel.RegisterCohortOptions{}); err != nil {
			log.Fatal(err)
		}
		if err := kern.RegisterCohort(ctx, pr, shaEng, hashQ.Desc, resultQ.Desc, osmodel.RegisterCohortOptions{}); err != nil {
			log.Fatal(err)
		}
		ctx.ResetCounters()
		encryptQ.PushBatch(ctx, accel.BytesToWords(data), *batch)
		digests = resultQ.PopBatch(ctx, *blocks*4, *batch)
		cycles = uint64(ctx.Cycles())
		ipc = ctx.IPC()
		kern.UnregisterCohort(ctx, shaEng)
		kern.UnregisterCohort(ctx, aesEng)
	})
	end := s.Run(0)

	// Software reference: AES-ECB (zero key, no CSR passed) then SHA-256.
	zero, _ := accel.NewAES(make([]byte, 16))
	ok := true
	for b := 0; b < *blocks; b++ {
		enc := make([]byte, 64)
		for o := 0; o < 64; o += 16 {
			zero.Encrypt(enc[o:], data[b*64+o:])
		}
		want := accel.SHA256Sum(enc)
		got := accel.WordsToBytes(digests[b*4 : b*4+4])
		if !bytes.Equal(got, want[:]) {
			ok = false
			log.Printf("block %d digest MISMATCH", b)
		}
	}

	fmt.Printf("Cohort SoC demo: %d blocks through AES -> SHA chained engines (Figure 5)\n", *blocks)
	fmt.Printf("  verification:      %v\n", map[bool]string{true: "all digests match software reference", false: "FAILED"}[ok])
	fmt.Printf("  program window:    %d cycles, core IPC %.3f\n", cycles, ipc)
	fmt.Printf("  simulated horizon: %d cycles\n", end)
	type stat struct {
		name string
		st   any
	}
	pairs := []stat{
		{"aes engine", aesEng.Stats()},
		{"sha engine", shaEng.Stats()},
		{"directory", s.Coh.Stats()},
		{"network", s.Net.Stats()},
	}
	if *metrics {
		pairs = append(pairs,
			stat{"core mmio", s.Bus.Requester(0).Stats()},
			stat{"core0 l1", s.Coh.Cache(0).Stats()},
			stat{"aes l1.5", s.Coh.Cache(2).Stats()},
			stat{"sha l1.5", s.Coh.Cache(3).Stats()},
		)
	}
	for _, pair := range pairs {
		fmt.Printf("  %-12s %+v\n", pair.name+":", pair.st)
	}

	// And the headline, in miniature.
	res, err := bench.Run(bench.RunConfig{Workload: bench.SHA, Mode: bench.MMIO, QueueSize: *blocks * 8, Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFor scale: the same SHA workload over the MMIO baseline takes %d cycles (core IPC %.3f).\n",
		res.Cycles, res.IPC)

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := s.K.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s (open at https://ui.perfetto.dev)\n", *tracePath)
	}

	if *serveAddr != "" {
		// The simulation has drained, so the registry serves the run's
		// final counters; /trace streams the recorded kernel timeline and
		// /debug/pprof profiles this (still-live) process.
		reg := cohort.NewRegistry()
		for _, src := range []struct {
			name string
			st   any
		}{
			{"aes-engine", aesEng.Stats()},
			{"sha-engine", shaEng.Stats()},
			{"directory", s.Coh.Stats()},
			{"network", s.Net.Stats()},
			{"core-mmio", s.Bus.Requester(0).Stats()},
		} {
			ms := cohort.FieldMetrics(src.st)
			reg.Register(src.name, func() []cohort.Metric { return ms })
		}
		srv := obsrv.New(obsrv.Options{
			MetricsText: reg.WritePrometheus,
			TraceJSON:   s.K.WriteChromeTrace,
		})
		if err := srv.Serve(*serveAddr); err != nil {
			log.Fatal(err)
		}
		obsrv.AwaitShutdown(
			fmt.Sprintf("\nobservability plane on http://%s (/metrics /trace /debug/pprof) until interrupted (Ctrl-C)", srv.Addr()),
			func() { srv.Close() })
	}
}
