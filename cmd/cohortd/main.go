// Command cohortd is the Cohort serving daemon: a fixed pool of accelerator
// engine workers, time-multiplexed across remote tenant sessions by the
// weighted-fair scheduler in internal/sched, fronted by the framed TCP
// protocol in internal/wire. One connection carries one session; connect
// with the cohort/client package.
//
// The observability plane (-http) serves /metrics with per-tenant labeled
// session counters, /healthz with a degraded-but-alive verdict over the
// scheduler's fault-containment counters, /sessions with a JSON snapshot of
// live sessions, /trace with the scheduler's flight-recorder ring, and
// /debug/pprof.
//
// Fault tolerance: -retries gives every session a per-block retry budget for
// transient accelerator faults (with -retry-backoff pacing the attempts); a
// terminal fault retires only the faulting session — other tenants keep
// their fair shares and the daemon keeps serving.
//
// -smoke runs a self-test instead of serving: it starts the daemon on a
// loopback port, streams a SHA-256 job through a real client connection,
// checks the digests against a local software run, and exits — the CI
// end-to-end check for the whole serving stack.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"cohort"
	"cohort/client"
	"cohort/internal/obsrv"
	"cohort/internal/sched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cohortd: ")
	var (
		listen       = flag.String("listen", "127.0.0.1:7411", "serve the wire protocol on this TCP address")
		engines      = flag.Int("engines", 2, "engine worker pool size")
		quantum      = flag.Int("quantum", 32, "max blocks served per scheduling decision")
		switchCost   = flag.Duration("switch-cost", 0, "modeled cohort_register CSR-swap cost per session switch")
		maxSessions  = flag.Int("max-sessions", 64, "admission control: max concurrently live sessions")
		queueCap     = flag.Int("queue-cap", 4096, "default per-direction session queue capacity in words")
		retries      = flag.Int("retries", 0, "per-block retry budget for transient accelerator faults (0 = every fault is terminal)")
		retryBackoff = flag.Duration("retry-backoff", 100*time.Microsecond, "pause before the first retry, doubling per attempt")
		httpAddr     = flag.String("http", "", "serve /metrics, /healthz, /sessions, /trace and /debug/pprof on this address (e.g. :9122)")
		noDelay      = flag.Bool("nodelay", true, "set TCP_NODELAY on accepted connections (frames flush without Nagle delay)")
		sockBuf      = flag.Int("sockbuf", 0, "socket read/write buffer size in bytes for accepted connections (0: kernel default)")
		smoke        = flag.Bool("smoke", false, "run the loopback self-test and exit")
	)
	flag.Parse()

	cfg := sched.Config{
		Engines: *engines, Quantum: *quantum, SwitchCost: *switchCost,
		MaxSessions: *maxSessions, QueueCap: *queueCap,
		Retries: *retries, RetryBackoff: *retryBackoff,
	}
	if *smoke {
		if err := runSmoke(cfg); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(cfg, *listen, *httpAddr, *noDelay, *sockBuf); err != nil {
		log.Fatal(err)
	}
}

func run(cfg sched.Config, listen, httpAddr string, noDelay bool, sockBuf int) error {
	reg := cohort.NewRegistry()
	flight := cohort.NewFlightRecorder(4096)
	cfg.Registry = reg
	cfg.Trace = flight

	s := sched.New(cfg)
	sv := sched.NewServer(s, nil)
	sv.NoDelay = noDelay
	sv.ReadBufferSize = sockBuf
	sv.WriteBufferSize = sockBuf
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- sv.Serve(ln) }()

	var web *obsrv.Server
	if httpAddr != "" {
		web = obsrv.New(obsrv.Options{
			MetricsText: reg.WritePrometheus,
			TraceJSON:   func(w io.Writer) error { return flight.WriteChrome(w, "cohortd") },
			Sessions:    func() any { return s.Sessions() },
			// /healthz: the serving plane is degraded-but-alive (200,
			// "degraded") once it has contained terminal faults or kills; a
			// live session parked on an error shows as its own degraded row.
			Health: func() []obsrv.Health {
				st := s.Stats()
				hs := []obsrv.Health{{Name: "sched"}}
				if n := st.TerminalFaults + st.Kills; n > 0 {
					hs[0].Degraded = fmt.Sprintf("%d terminal faults, %d kills contained",
						st.TerminalFaults, st.Kills)
				}
				for _, ses := range s.Sessions() {
					if ses.Err != "" {
						hs = append(hs, obsrv.Health{
							Name:     fmt.Sprintf("session/%s#%d", ses.Tenant, ses.ID),
							Degraded: ses.Err,
						})
					}
				}
				return hs
			},
		})
		if err := web.Serve(httpAddr); err != nil {
			sv.Close()
			s.Close()
			return err
		}
		fmt.Printf("observability plane on http://%s (/metrics /sessions /trace /debug/pprof)\n", web.Addr())
	}

	obsrv.AwaitShutdown(
		fmt.Sprintf("serving %d engines on %s (quantum %d blocks) until interrupted (Ctrl-C)",
			cfg.Engines, ln.Addr(), cfg.Quantum),
		func() { sv.Close() },
		func() { s.Close() },
		func() {
			if web != nil {
				web.Close()
			}
		},
	)
	if err := <-serveErr; !errors.Is(err, sched.ErrServerClosed) {
		return err
	}
	return nil
}

// runSmoke is the end-to-end self-test: real scheduler, real TCP listener,
// real client, SHA-256 digests checked word for word against a local
// software run of the same accelerator.
func runSmoke(cfg sched.Config) error {
	reg := cohort.NewRegistry()
	cfg.Registry = reg
	s := sched.New(cfg)
	defer s.Close()
	sv := sched.NewServer(s, nil)
	defer sv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go sv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on the deferred Close

	const blocks = 64
	ref := cohort.NewSHA256()
	in := make([]cohort.Word, blocks*ref.InWords())
	for i := range in {
		in[i] = cohort.Word(i)*2654435761 + 17
	}
	want := make([]cohort.Word, 0, blocks*ref.OutWords())
	for b := 0; b < blocks; b++ {
		ws, err := ref.Process(in[b*ref.InWords() : (b+1)*ref.InWords()])
		if err != nil {
			return err
		}
		want = append(want, ws...)
	}

	start := time.Now()
	c, err := client.Connect(ln.Addr().String(), client.Options{Tenant: "smoke", Accel: "sha256"})
	if err != nil {
		return err
	}
	defer c.Close()
	got, res, err := c.Stream(in)
	if err != nil {
		return fmt.Errorf("smoke stream: %w", err)
	}
	if len(got) != len(want) {
		return fmt.Errorf("smoke: got %d digest words, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("smoke: digest word %d = %#x, want %#x", i, got[i], want[i])
		}
	}
	if res == nil || res.Blocks != blocks {
		return fmt.Errorf("smoke: done reply %+v, want %d blocks", res, blocks)
	}
	if n := len(s.Sessions()); n != 0 {
		return fmt.Errorf("smoke: %d sessions still live after done", n)
	}
	fmt.Printf("smoke ok: %d sha256 blocks round-tripped over %s in %v (session %d)\n",
		blocks, ln.Addr(), time.Since(start).Round(time.Microsecond), c.Session())
	return nil
}
