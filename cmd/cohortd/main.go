// Command cohortd is the Cohort serving daemon: a fixed pool of accelerator
// engine workers, time-multiplexed across remote tenant sessions by the
// weighted-fair scheduler in internal/sched, fronted by the framed TCP
// protocol in internal/wire. One connection carries one session; connect
// with the cohort/client package.
//
// The observability plane (-http) serves /metrics with per-tenant labeled
// session counters and stage-latency histograms, /healthz with a
// degraded-but-alive verdict over the scheduler's fault-containment counters
// plus a stall watchdog over every engine worker, /sessions with a JSON
// snapshot of live sessions (admission timestamps, cumulative counters,
// sampled latency), /stats/latency with the per-tenant serving-stage
// breakdown, /trace with the scheduler's flight-recorder ring, and
// /debug/pprof.
//
// Windowed telemetry and SLOs: a background sampler (internal/telem) ticks
// every -slo-tick, derives per-tenant rolling rates and stage quantiles over
// -slo-short and -slo-long windows (served on /stats/windows and exported as
// cohort_rate_* gauges), and evaluates the -slo objectives with multi-window
// burn-rate logic on /stats/slo. -slo accepts a JSON array literal or a file
// path: [{"tenant":"*","stage":"compute","p99_ms":2,"max_errors_per_s":5}].
// A breach flips /healthz to degraded with the reason; every breach,
// recovery, session kill, terminal fault, watchdog stall/recovery and
// admission rejection lands in the structured event ring on /events
// (?since=<cursor>&max=<n>, capacity -events) and in the process log.
//
// Latency attribution: -latency-sample N stamps one scheduling quantum in
// every N at its stage boundaries (queue wait, dispatch, compute, wire
// egress); clients that opt in (client.Options.ServerTiming) additionally
// receive the breakdown over the wire. -latency-sample -1 disables
// attribution entirely.
//
// Connection lifecycle is logged with log/slog (structured key=value
// records: session id, tenant, remote address); -log-level picks the floor.
//
// Fault tolerance: -retries gives every session a per-block retry budget for
// transient accelerator faults (with -retry-backoff pacing the attempts); a
// terminal fault retires only the faulting session — other tenants keep
// their fair shares and the daemon keeps serving. A worker that stops
// completing work for -stall-window while sessions wait is reported stalled
// on /healthz (503) and dumps the flight ring.
//
// -smoke runs a self-test instead of serving: it starts the daemon on a
// loopback port, streams a SHA-256 job through a real client connection,
// checks the digests against a local software run — and, with timing
// requested, that the server-side stage breakdown came back — and exits.
// It is the CI end-to-end check for the whole serving stack.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"time"

	"cohort"
	"cohort/client"
	"cohort/internal/obsrv"
	"cohort/internal/policy"
	"cohort/internal/sched"
	"cohort/internal/telem"
)

// telemConfig carries the telemetry-plane flags into run.
type telemConfig struct {
	slos      []telem.SLO
	tick      time.Duration
	short     time.Duration
	long      time.Duration
	eventsCap int
}

// policyConfig carries the adaptive-controller flags into run.
type policyConfig struct {
	enabled bool
	spec    policy.Spec
	decide  time.Duration
}

func main() {
	var (
		listen        = flag.String("listen", "127.0.0.1:7411", "serve the wire protocol on this TCP address")
		engines       = flag.Int("engines", 2, "engine worker pool size")
		quantum       = flag.Int("quantum", 32, "max blocks served per scheduling decision")
		switchCost    = flag.Duration("switch-cost", 0, "modeled cohort_register CSR-swap cost per session switch")
		maxSessions   = flag.Int("max-sessions", 64, "admission control: max concurrently live sessions")
		queueCap      = flag.Int("queue-cap", 4096, "default per-direction session queue capacity in words")
		retries       = flag.Int("retries", 0, "per-block retry budget for transient accelerator faults (0 = every fault is terminal)")
		retryBackoff  = flag.Duration("retry-backoff", 100*time.Microsecond, "pause before the first retry, doubling per attempt")
		latencySample = flag.Int("latency-sample", 64, "stage-latency attribution: stamp 1 in N scheduling quanta (-1 disables)")
		stallWindow   = flag.Duration("stall-window", 2*time.Second, "declare an engine worker stalled after this long without progress while work waits")
		httpAddr      = flag.String("http", "", "serve /metrics, /healthz, /sessions, /stats/*, /events, /trace and /debug/pprof on this address (e.g. :9122)")
		slo           = flag.String("slo", "", "SLO specs: JSON array literal or file path, e.g. [{\"tenant\":\"*\",\"stage\":\"compute\",\"p99_ms\":2}]")
		sloTick       = flag.Duration("slo-tick", time.Second, "telemetry sampling period")
		sloShort      = flag.Duration("slo-short", 10*time.Second, "short observation window for rates, quantiles and burn rates")
		sloLong       = flag.Duration("slo-long", 5*time.Minute, "long observation window for burn-rate confirmation")
		eventsCap     = flag.Int("events", 1024, "structured event ring capacity (/events)")
		adaptive      = flag.Bool("adaptive", false, "enable the online policy controller: epsilon-greedy bandit over (quantum, coalesce) arms plus AIMD batch-floor tuning, fed by the telemetry sampler (-slo-tick cadence); decisions land on /policy, /events and cohort_policy_* metrics")
		policySpec    = flag.String("policy", "", "adaptive-controller spec: JSON object literal or @file, e.g. {\"quantum\":[8,32,128],\"coalesce_words\":[1024,65536],\"epsilon\":0.1}")
		policyTick    = flag.Duration("policy-tick", 0, "minimum spacing between controller decisions (0: decide on every sampler tick)")
		drain         = flag.Bool("drain", false, "drain on SIGTERM/SIGINT: stop admitting sessions, flush the in-flight ones (up to -drain-timeout), then exit — the rolling-restart path; /drain (POST) starts a drain early")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight sessions to finish when draining")
		noDelay       = flag.Bool("nodelay", true, "set TCP_NODELAY on accepted connections (frames flush without Nagle delay)")
		sockBuf       = flag.Int("sockbuf", 0, "socket read/write buffer size in bytes for accepted connections (0: kernel default)")
		logLevel      = flag.String("log-level", "info", "log floor: debug, info, warn or error")
		smoke         = flag.Bool("smoke", false, "run the loopback self-test and exit")
	)
	flag.Parse()

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "cohortd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	slos, err := telem.ParseSLOs(*slo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cohortd: %v\n", err)
		os.Exit(2)
	}
	tc := telemConfig{
		slos: slos, tick: *sloTick, short: *sloShort, long: *sloLong,
		eventsCap: *eventsCap,
	}
	spec, err := policy.ParseSpec(*policySpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cohortd: %v\n", err)
		os.Exit(2)
	}
	pc := policyConfig{enabled: *adaptive, spec: spec, decide: *policyTick}

	cfg := sched.Config{
		Engines: *engines, Quantum: *quantum, SwitchCost: *switchCost,
		MaxSessions: *maxSessions, QueueCap: *queueCap,
		Retries: *retries, RetryBackoff: *retryBackoff,
		LatencySample: *latencySample,
	}
	if *smoke {
		if err := runSmoke(cfg); err != nil {
			logger.Error("smoke failed", "err", err)
			os.Exit(1)
		}
		return
	}
	if err := run(cfg, tc, pc, logger, *listen, *httpAddr, *noDelay, *sockBuf, *stallWindow, *drain, *drainTimeout); err != nil {
		logger.Error("cohortd exiting", "err", err)
		os.Exit(1)
	}
}

func run(cfg sched.Config, tc telemConfig, pc policyConfig, logger *slog.Logger, listen, httpAddr string, noDelay bool, sockBuf int, stallWindow time.Duration, drain bool, drainTimeout time.Duration) error {
	reg := cohort.NewRegistry()
	flight := cohort.NewFlightRecorder(4096)
	cfg.Registry = reg
	cfg.Trace = flight
	cohort.RegisterBuildInfo(reg, "build")

	// Structured event plane: the scheduler's state transitions (kills,
	// terminal faults, rejections), the watchdog's stall edges and the SLO
	// engine's breach/recovery flips all land in one ring, mirrored to the
	// process log and served on /events.
	events := telem.NewLog(tc.eventsCap, logger)
	cfg.Events = events

	s := sched.New(cfg)
	sv := sched.NewServer(s, nil)
	sv.NoDelay = noDelay
	sv.ReadBufferSize = sockBuf
	sv.WriteBufferSize = sockBuf
	sv.Log = logger
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- sv.Serve(ln) }()

	// Stall watchdog over the engine workers: a worker that stops completing
	// quanta while sessions have runnable work shows on /healthz (503) and
	// dumps the flight ring for post-mortem.
	dog := cohort.NewWatchdog(stallWindow,
		cohort.WithStallDump(flight),
		cohort.WithStallCallback(func(ev cohort.StallEvent) {
			logger.Warn("worker stalled", "worker", ev.Engine, "idle", ev.Idle)
			events.Emit(telem.EventWatchdogStall, "", 0,
				fmt.Sprintf("%s stalled for %v", ev.Engine, ev.Idle))
		}),
		cohort.WithRecoveryCallback(func(ev cohort.StallEvent) {
			events.Emit(telem.EventWatchdogRecover, "", 0,
				fmt.Sprintf("%s recovered after %v", ev.Engine, ev.Idle))
		}),
	)
	s.WatchWorkers(dog)
	cohort.RegisterWatchdog(reg, "watchdog", dog)

	// Windowed telemetry sampler: rolling per-tenant rates and stage
	// quantiles, multi-window SLO evaluation, cohort_rate_* gauges.
	sampler := telem.New(telem.Config{
		Registry: reg, Tick: tc.tick, Short: tc.short, Long: tc.long,
		SLOs: tc.slos, Events: events,
	})
	sampler.Start()

	// Adaptive orchestration (-adaptive): the policy controller closes the
	// loop from the sampler's windowed frames back into the scheduler's
	// retune path. Decisions are observable on /policy, /events
	// (policy_switch) and the cohort_policy_* metric families.
	var ctl *policy.Controller
	var cancelSub func()
	if pc.enabled {
		frames, cancel := sampler.Subscribe(1)
		cancelSub = cancel
		ctl = policy.New(pc.spec.Apply(policy.Config{
			Sched:    s,
			Frames:   frames,
			Decide:   pc.decide,
			Registry: reg,
			Events:   events,
		}))
		ctl.Start()
		logger.Info("adaptive controller up",
			"arms", len(ctl.Doc().Arms), "decide", pc.decide)
	}

	var policyFn func() any
	if ctl != nil {
		policyFn = func() any { return ctl.Doc() }
	}
	var web *obsrv.Server
	if httpAddr != "" {
		web = obsrv.New(obsrv.Options{
			Policy:       policyFn,
			MetricsText:  reg.WritePrometheus,
			TraceJSON:    func(w io.Writer) error { return flight.WriteChrome(w, "cohortd") },
			Sessions:     func() any { return s.Sessions() },
			LatencyStats: func() any { return s.LatencyStats() },
			SLOStats:     func() any { return sampler.Status() },
			WindowStats:  func() any { return sampler.Windows() },
			Events:       func(since uint64, max int) any { return events.PageSince(since, max) },
			// /drain: POST starts draining (stop admitting, flush in-flight
			// sessions); GET reads progress. Either way the response is the
			// live drain-progress document.
			Drain: func(trigger bool) any {
				if trigger {
					logger.Info("drain requested via /drain")
					s.Drain()
				}
				return s.DrainStatus()
			},
			// /healthz: the serving plane is degraded-but-alive (200,
			// "degraded") once it has contained terminal faults or kills; a
			// live session parked on an error shows as its own degraded row;
			// a stalled or parked engine worker (watchdog verdict) flips the
			// whole document unhealthy (503).
			Health: func() []obsrv.Health {
				st := s.Stats()
				// Draining flips /healthz to status "draining" (still 200):
				// routing tiers eject the shard from the ring while in-flight
				// clients finish cleanly.
				hs := []obsrv.Health{{Name: "sched", Draining: s.Draining()}}
				if n := st.TerminalFaults + st.Kills; n > 0 {
					hs[0].Degraded = fmt.Sprintf("%d terminal faults, %d kills contained",
						st.TerminalFaults, st.Kills)
				}
				// SLO verdict: a breaching objective degrades the whole
				// document (200 "degraded") with the breach reason — the
				// daemon still serves, but operators see which tenant's
				// objective is burning and why.
				hs = append(hs, obsrv.Health{Name: "slo", Degraded: sampler.Degraded()})
				for _, h := range dog.Health() {
					row := obsrv.Health{Name: h.Engine, Stalled: h.Stalled, Idle: h.Idle}
					if h.Err != nil {
						row.Err = h.Err.Error()
					}
					hs = append(hs, row)
				}
				for _, ses := range s.Sessions() {
					if ses.Err != "" {
						hs = append(hs, obsrv.Health{
							Name:     fmt.Sprintf("session/%s#%d", ses.Tenant, ses.ID),
							Degraded: ses.Err,
						})
					}
				}
				return hs
			},
		})
		if err := web.Serve(httpAddr); err != nil {
			if ctl != nil {
				cancelSub()
				ctl.Stop()
			}
			sampler.Stop()
			dog.Stop()
			sv.Close()
			s.Close()
			return err
		}
		logger.Info("observability plane up", "addr", web.Addr(),
			"endpoints", "/metrics /healthz /sessions /stats/latency /stats/slo /stats/windows /events /policy /trace /debug/pprof")
	}

	obsrv.AwaitShutdown(
		fmt.Sprintf("serving %d engines on %s (quantum %d blocks) until interrupted (Ctrl-C)",
			cfg.Engines, ln.Addr(), cfg.Quantum),
		// Drain barrier, ahead of the teardown hooks: stop admitting, then
		// let the in-flight sessions stream their final Done frames before
		// the server starts closing connections. The observability plane is
		// still up, so the fleet catalog sees "draining" and ejects this
		// shard from the ring while its sessions finish.
		func() {
			if !drain {
				return
			}
			s.Drain()
			ds := s.DrainStatus()
			logger.Info("draining", "live_sessions", ds.Live, "timeout", drainTimeout)
			deadline := time.Now().Add(drainTimeout)
			select {
			case <-s.Drained():
			case <-time.After(drainTimeout):
				logger.Warn("drain timeout; closing with sessions still live",
					"live_sessions", s.DrainStatus().Live)
			}
			// Scheduler retirement is not wire-level flush: the handlers may
			// still be writing the final Done frames. Quiesce waits for them
			// so the Close below cannot cut a last frame off mid-write.
			remaining := time.Until(deadline)
			if remaining < time.Second {
				remaining = time.Second
			}
			if sv.Quiesce(remaining) {
				logger.Info("drain complete")
			} else {
				logger.Warn("drain timeout; connections still open after quiesce")
			}
		},
		func() { sv.Close() },
		func() { s.Close() },
		func() {
			if ctl != nil {
				cancelSub()
				ctl.Stop()
			}
		},
		func() { sampler.Stop() },
		func() { dog.Stop() },
		func() {
			if web != nil {
				web.Close()
			}
		},
	)
	if err := <-serveErr; !errors.Is(err, sched.ErrServerClosed) {
		return err
	}
	return nil
}

// runSmoke is the end-to-end self-test: real scheduler, real TCP listener,
// real client, SHA-256 digests checked word for word against a local
// software run of the same accelerator — plus the latency-attribution path:
// the client opts into server timing and the Done frame must carry a stage
// breakdown with at least one sampled compute quantum.
func runSmoke(cfg sched.Config) error {
	reg := cohort.NewRegistry()
	cfg.Registry = reg
	// Sample every quantum so the tiny smoke job reliably produces stage
	// samples for the Done timing check.
	cfg.LatencySample = 1
	s := sched.New(cfg)
	defer s.Close()
	sv := sched.NewServer(s, nil)
	defer sv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go sv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on the deferred Close

	const blocks = 64
	ref := cohort.NewSHA256()
	in := make([]cohort.Word, blocks*ref.InWords())
	for i := range in {
		in[i] = cohort.Word(i)*2654435761 + 17
	}
	want := make([]cohort.Word, 0, blocks*ref.OutWords())
	for b := 0; b < blocks; b++ {
		ws, err := ref.Process(in[b*ref.InWords() : (b+1)*ref.InWords()])
		if err != nil {
			return err
		}
		want = append(want, ws...)
	}

	start := time.Now()
	c, err := client.Connect(ln.Addr().String(), client.Options{
		Tenant: "smoke", Accel: "sha256", ServerTiming: true,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	got, res, err := c.Stream(in)
	if err != nil {
		return fmt.Errorf("smoke stream: %w", err)
	}
	if len(got) != len(want) {
		return fmt.Errorf("smoke: got %d digest words, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("smoke: digest word %d = %#x, want %#x", i, got[i], want[i])
		}
	}
	if res == nil || res.Blocks != blocks {
		return fmt.Errorf("smoke: done reply %+v, want %d blocks", res, blocks)
	}
	elapsed := time.Since(start)
	timing := c.LastServerTiming()
	if timing == nil || res.Timing == nil {
		return fmt.Errorf("smoke: no server timing in done reply (timing requested)")
	}
	if timing.Compute.Samples == 0 {
		return fmt.Errorf("smoke: server timing has no compute samples: %+v", timing)
	}
	if sum := timing.ServerMeanNs(); sum <= 0 || sum > float64(elapsed) {
		return fmt.Errorf("smoke: server stage sum %.0fns outside (0, e2e %dns]", sum, elapsed)
	}
	if n := len(s.Sessions()); n != 0 {
		return fmt.Errorf("smoke: %d sessions still live after done", n)
	}
	fmt.Printf("smoke ok: %d sha256 blocks round-tripped over %s in %v (session %d, server-resident mean %.1fµs/quantum)\n",
		blocks, ln.Addr(), elapsed.Round(time.Microsecond), c.Session(), timing.ServerMeanNs()/1e3)
	return nil
}
