package cohort

import (
	"fmt"
	"io"
	"math/bits"
	"reflect"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"cohort/internal/trace"
)

// This file is the native runtime's observability surface: a pull-based
// metrics registry over the runtime's allocation-free counters, a log2
// latency-histogram snapshot type, and a wall-clock trace recorder that
// writes the same Chrome trace-event JSON as the simulator — so a native run
// and a simulated run open side by side in Perfetto.

// Metric is one named sample: a plain counter value, or — when Histo is
// non-nil — a whole latency distribution (rendered as quantiles by String
// and as a Prometheus summary by WritePrometheus), or — when IsFloat is
// set — a float-valued gauge (the windowed rates internal/telem derives;
// Value is ignored).
type Metric struct {
	Name    string
	Value   uint64
	Float   float64
	IsFloat bool
	Histo   *LatencyHistogram
}

// FloatMetric builds a float-valued gauge sample.
func FloatMetric(name string, v float64) Metric {
	return Metric{Name: name, Float: v, IsFloat: true}
}

// SourceSnapshot is one registered source's counters at snapshot time.
type SourceSnapshot struct {
	Name    string
	Metrics []Metric
}

// Label is one extra Prometheus label pair attached to a metric source
// (RegisterLabeled) — how a multi-tenant service keys a source by tenant.
type Label struct {
	Key   string
	Value string
}

// source is one registered metric source: its snapshot callback plus any
// extra exposition labels.
type source struct {
	fn     func() []Metric
	labels []Label
}

// Registry collects metric sources (queues, engines, adapters) and snapshots
// them on demand. Sources are polled only inside Snapshot/String, so
// registration adds zero cost to the instrumented hot paths. Safe for
// concurrent use.
type Registry struct {
	mu      sync.Mutex
	order   []string
	sources map[string]source
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: make(map[string]source)}
}

// Register adds (or replaces) a named metric source. fn is called during
// Snapshot and must be safe to call at any time; for Fifo-backed sources the
// values are exact only when the queue's two sides are quiescent.
func (r *Registry) Register(name string, fn func() []Metric) {
	r.RegisterLabeled(name, nil, fn)
}

// RegisterLabeled is Register with extra Prometheus labels emitted on every
// sample of the source (after the implicit source label). A serving layer
// uses this to key per-session sources by tenant, so dashboards can aggregate
// across a tenant's sessions no matter how the source names are spelled.
// Labels only affect WritePrometheus output; Snapshot and String ignore them.
func (r *Registry) RegisterLabeled(name string, labels []Label, fn func() []Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sources[name]; !ok {
		r.order = append(r.order, name)
	}
	r.sources[name] = source{fn: fn, labels: append([]Label(nil), labels...)}
}

// Len returns the number of registered sources.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sources)
}

// Unregister removes a source; unknown names are ignored.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sources[name]; !ok {
		return
	}
	delete(r.sources, name)
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// Snapshot polls every source in registration order.
func (r *Registry) Snapshot() []SourceSnapshot {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fns := make([]func() []Metric, len(names))
	for i, n := range names {
		fns[i] = r.sources[n].fn
	}
	r.mu.Unlock()
	// Poll outside the lock: a source callback may itself take locks.
	out := make([]SourceSnapshot, len(names))
	for i, n := range names {
		out[i] = SourceSnapshot{Name: n, Metrics: fns[i]()}
	}
	return out
}

// SnapshotLabeled is Snapshot plus each source's exposition labels, aligned
// by index — the view WritePrometheus renders and the windowed telemetry
// sampler (internal/telem) folds into per-tenant aggregates: a consumer that
// needs to group sources by tenant reads the labels instead of parsing
// source-name spellings.
func (r *Registry) SnapshotLabeled() ([]SourceSnapshot, [][]Label) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fns := make([]func() []Metric, len(names))
	labels := make([][]Label, len(names))
	for i, n := range names {
		fns[i], labels[i] = r.sources[n].fn, r.sources[n].labels
	}
	r.mu.Unlock()
	out := make([]SourceSnapshot, len(names))
	for i, n := range names {
		out[i] = SourceSnapshot{Name: n, Metrics: fns[i]()}
	}
	return out, labels
}

// String renders the snapshot as an aligned two-column table, one section per
// source.
func (r *Registry) String() string {
	var b strings.Builder
	for _, s := range r.Snapshot() {
		fmt.Fprintf(&b, "%s:\n", s.Name)
		width := 0
		for _, m := range s.Metrics {
			if len(m.Name) > width {
				width = len(m.Name)
			}
		}
		for _, m := range s.Metrics {
			if m.Histo != nil {
				fmt.Fprintf(&b, "  %-*s p50=%.0fns p95=%.0fns p99=%.0fns n=%d\n", width, m.Name,
					m.Histo.Quantile(0.5), m.Histo.Quantile(0.95), m.Histo.Quantile(0.99), m.Histo.Samples())
				continue
			}
			if m.IsFloat {
				fmt.Fprintf(&b, "  %-*s %g\n", width, m.Name, m.Float)
				continue
			}
			fmt.Fprintf(&b, "  %-*s %d\n", width, m.Name, m.Value)
		}
	}
	return b.String()
}

// WritePrometheus renders the registry snapshot in the Prometheus text
// exposition format (version 0.0.4): one metric family per distinct metric
// name, prefixed `cohort_`, with the source name as a `source` label.
// Families are emitted in sorted name order with HELP/TYPE lines; within a
// family, samples appear in source registration order — the output is
// deterministic for a fixed registry state, which the golden-file test pins.
// Plain counters are exposed as gauges (a snapshot of a monotone counter);
// histogram-valued metrics (Metric.Histo) become summaries with
// p50/p95/p99 quantiles computed by LatencyHistogram.Quantile, a
// midpoint-estimated _sum, and an exact _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type sample struct {
		labels string // rendered label set: source plus any extra labels
		m      Metric
	}
	families := make(map[string][]sample)
	var names []string
	snaps, labels := r.SnapshotLabeled()
	for i, s := range snaps {
		var lb strings.Builder
		fmt.Fprintf(&lb, "source=\"%s\"", promEscape(s.Name))
		for _, l := range labels[i] {
			fmt.Fprintf(&lb, ",%s=\"%s\"", promLabelKey(l.Key), promEscape(l.Value))
		}
		rendered := lb.String()
		for _, m := range s.Metrics {
			fam := promName(m.Name)
			if _, ok := families[fam]; !ok {
				names = append(names, fam)
			}
			families[fam] = append(families[fam], sample{rendered, m})
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, fam := range names {
		ss := families[fam]
		kind := "gauge"
		if ss[0].m.Histo != nil {
			kind = "summary"
		}
		fmt.Fprintf(&b, "# HELP %s Cohort runtime metric %s.\n", fam, ss[0].m.Name)
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam, kind)
		for _, s := range ss {
			if h := s.m.Histo; h != nil {
				for _, q := range [...]float64{0.5, 0.95, 0.99} {
					fmt.Fprintf(&b, "%s{%s,quantile=\"%g\"} %s\n", fam, s.labels, q, promFloat(h.Quantile(q)))
				}
				fmt.Fprintf(&b, "%s_sum{%s} %s\n", fam, s.labels, promFloat(h.sumEstimate()))
				fmt.Fprintf(&b, "%s_count{%s} %d\n", fam, s.labels, h.Samples())
				continue
			}
			if s.m.IsFloat {
				fmt.Fprintf(&b, "%s{%s} %s\n", fam, s.labels, promFloat(s.m.Float))
				continue
			}
			fmt.Fprintf(&b, "%s{%s} %d\n", fam, s.labels, s.m.Value)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promName sanitizes a metric name into the Prometheus identifier alphabet
// ([a-zA-Z0-9_:]) under the cohort_ namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("cohort_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelKey sanitizes a label key into the Prometheus identifier alphabet
// (promName's, minus the cohort_ namespace prefix — label keys are not
// metric names).
func promLabelKey(k string) string {
	return strings.TrimPrefix(promName(k), "cohort_")
}

// promEscape escapes a label value per the exposition format: backslash,
// double quote and newline.
func promEscape(v string) string {
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// promFloat formats a float sample value (quantiles, sums).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// RegisterBuildInfo exposes a constant cohort_build_info gauge (value 1)
// under the given source name, with the binary's identity as labels: module
// version (from debug.ReadBuildInfo; "unknown" outside module builds), Go
// toolchain version, GOOS and GOARCH. The Prometheus *_info idiom: join
// against it to annotate any other series with what build produced it.
func RegisterBuildInfo(r *Registry, name string) {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	labels := []Label{
		{Key: "version", Value: version},
		{Key: "go_version", Value: runtime.Version()},
		{Key: "goos", Value: runtime.GOOS},
		{Key: "goarch", Value: runtime.GOARCH},
	}
	r.RegisterLabeled(name, labels, func() []Metric {
		return []Metric{{Name: "build_info", Value: 1}}
	})
}

// RegisterFifo exposes a queue's FifoStats under the given source name.
// (A package function rather than a Registry method: methods cannot add type
// parameters.)
func RegisterFifo[T any](r *Registry, name string, q *Fifo[T]) {
	r.Register(name, func() []Metric {
		s := q.Stats()
		return []Metric{
			{Name: "pushes", Value: s.Pushes},
			{Name: "pops", Value: s.Pops},
			{Name: "push_stalls", Value: s.PushStalls},
			{Name: "pop_stalls", Value: s.PopStalls},
			{Name: "high_water", Value: s.HighWater},
		}
	})
}

// RegisterMpmc exposes a shared queue's MpmcStats under the given source name.
func RegisterMpmc[T any](r *Registry, name string, q *Mpmc[T]) {
	r.Register(name, func() []Metric {
		s := q.Stats()
		return []Metric{
			{Name: "pushes", Value: s.Pushes},
			{Name: "pops", Value: s.Pops},
		}
	})
}

// RegisterEngine exposes an engine's EngineStats under the given source
// name, with the sampled drain latency distribution as a histogram-valued
// metric (quantiles in String/WritePrometheus output).
func RegisterEngine(r *Registry, name string, e *Engine) {
	r.Register(name, func() []Metric {
		s := e.StatsDetail()
		h := s.DrainNs
		return []Metric{
			{Name: "words_in", Value: s.WordsIn},
			{Name: "words_out", Value: s.WordsOut},
			{Name: "blocks", Value: s.Blocks},
			{Name: "wakeups", Value: s.Wakeups},
			{Name: "backoff_sleeps", Value: s.BackoffSleeps},
			{Name: "errors", Value: s.Errors},
			{Name: "retries", Value: s.Retries},
			{Name: "recovered", Value: s.Recovered},
			{Name: "dropped_words", Value: s.DroppedWords},
			{Name: "drain_ns", Histo: &h},
		}
	})
}

// FieldMetrics converts a flat counters struct — exported fields of unsigned,
// signed or LatencyHistogram type — into a metric list, naming each metric
// after its field in snake_case. It lets ad-hoc stat structs (the simulator's
// per-subsystem counters, for instance) feed a Registry without hand-written
// adapters:
//
//	reg.Register("dir", func() []cohort.Metric { return cohort.FieldMetrics(dir.Stats()) })
//
// Non-struct values and unsupported field types yield no metrics; negative
// signed values are clamped to 0.
func FieldMetrics(v any) []Metric {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Struct {
		return nil
	}
	rt := rv.Type()
	var out []Metric
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() {
			continue
		}
		name := snakeCase(f.Name)
		fv := rv.Field(i)
		switch fv.Kind() {
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			out = append(out, Metric{Name: name, Value: fv.Uint()})
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			n := fv.Int()
			if n < 0 {
				n = 0
			}
			out = append(out, Metric{Name: name, Value: uint64(n)})
		default:
			if h, ok := fv.Interface().(LatencyHistogram); ok {
				hc := h
				out = append(out, Metric{Name: name, Histo: &hc})
			}
		}
	}
	return out
}

// snakeCase converts a Go exported field name (TLBHits, WordsIn) to a metric
// identifier (tlb_hits, words_in): an underscore is inserted before each
// upper→lower boundary and each lower/digit→upper boundary.
func snakeCase(s string) string {
	var b strings.Builder
	rs := []rune(s)
	for i, c := range rs {
		isUpper := c >= 'A' && c <= 'Z'
		if isUpper && i > 0 {
			prevUpper := rs[i-1] >= 'A' && rs[i-1] <= 'Z'
			nextLower := i+1 < len(rs) && rs[i+1] >= 'a' && rs[i+1] <= 'z'
			if !prevUpper || nextLower {
				b.WriteByte('_')
			}
		}
		if isUpper {
			c += 'a' - 'A'
		}
		b.WriteRune(c)
	}
	return b.String()
}

// LatencyHistogram is a log2-bucketed latency distribution in nanoseconds:
// Buckets[i] counts samples whose value has bit length i, i.e. lies in
// [2^(i-1), 2^i) ns (bucket 0 counts zero-duration samples).
type LatencyHistogram struct {
	Buckets [histoBuckets]uint64
}

// LatencyRecorder is the concurrent accumulator behind a LatencyHistogram: a
// fixed array of atomic log2 buckets plus an exact running sum, safe for any
// number of writers with no locks and no allocation per sample. The engine's
// drain histogram and the serving scheduler's per-stage attribution both
// record through it; Snapshot hands the counts to LatencyHistogram for
// quantile math. The zero value is ready to use.
type LatencyRecorder struct {
	buckets [histoBuckets]atomic.Uint64
	sum     atomic.Uint64
}

// Observe files one latency sample in nanoseconds.
func (r *LatencyRecorder) Observe(ns uint64) {
	i := bits.Len64(ns)
	if i >= histoBuckets {
		i = histoBuckets - 1
	}
	r.buckets[i].Add(1)
	r.sum.Add(ns)
}

// Snapshot copies the bucket counts into a plain LatencyHistogram.
func (r *LatencyRecorder) Snapshot() LatencyHistogram {
	var h LatencyHistogram
	for i := range r.buckets {
		h.Buckets[i] = r.buckets[i].Load()
	}
	return h
}

// Samples returns the total number of recorded samples.
func (r *LatencyRecorder) Samples() uint64 {
	var n uint64
	for i := range r.buckets {
		n += r.buckets[i].Load()
	}
	return n
}

// SumNs returns the exact sum of every recorded sample in nanoseconds (the
// histogram buckets only bound each sample to a factor of 2; the sum is kept
// exactly so means don't inherit that error).
func (r *LatencyRecorder) SumNs() uint64 { return r.sum.Load() }

// Reset zeroes the recorder. Not atomic with respect to concurrent Observe
// calls; quiesce writers first, as with engine ResetStats.
func (r *LatencyRecorder) Reset() {
	for i := range r.buckets {
		r.buckets[i].Store(0)
	}
	r.sum.Store(0)
}

// Samples returns the total number of recorded samples.
func (h LatencyHistogram) Samples() uint64 {
	var n uint64
	for _, c := range h.Buckets {
		n += c
	}
	return n
}

// Quantile estimates the p-quantile (p in [0,1]) of the recorded
// distribution in nanoseconds: it walks the cumulative bucket counts to the
// bucket containing the target rank and interpolates linearly between that
// bucket's bounds [2^(i-1), 2^i). The estimate is exact for distributions
// uniform within each bucket and always lies inside the true sample's
// bucket, i.e. within a factor of 2. Returns 0 when no samples are recorded.
func (h LatencyHistogram) Quantile(p float64) float64 {
	n := h.Samples()
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(n)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if target <= next {
			if i == 0 {
				return 0 // bucket 0 is exactly the zero-duration samples
			}
			lo := float64(uint64(1) << (i - 1))
			hi := float64(uint64(1) << i)
			return lo + (target-cum)/float64(c)*(hi-lo)
		}
		cum = next
	}
	return float64(uint64(1) << (histoBuckets - 1)) // unreachable: target <= n
}

// sumEstimate approximates the distribution's total in nanoseconds from the
// bucket midpoints (bucket i's samples counted at 1.5·2^(i-1) ns).
func (h LatencyHistogram) sumEstimate() float64 {
	var sum float64
	for i, c := range h.Buckets {
		if c == 0 || i == 0 {
			continue
		}
		sum += float64(c) * 1.5 * float64(uint64(1)<<(i-1))
	}
	return sum
}

// String renders the nonzero buckets, one "<upper-bound>ns: count" pair per
// line, in ascending latency order.
func (h LatencyHistogram) String() string {
	var b strings.Builder
	for i, c := range h.Buckets {
		if c != 0 {
			fmt.Fprintf(&b, "<%dns: %d\n", uint64(1)<<i, c)
		}
	}
	if b.Len() == 0 {
		return "(no samples)\n"
	}
	return b.String()
}

// Trace is a wall-clock trace recorder for the native runtime. Attach
// engines with WithTrace at registration; their poll/drain/compute/publish/
// backoff activity lands on per-engine tracks, timestamped in microseconds
// since the recorder was created. Write the result with WriteChrome and open
// it at https://ui.perfetto.dev. Safe for concurrent use by any number of
// engines.
type Trace struct {
	rec *trace.Recorder
}

// NewTrace creates a recorder whose clock starts now.
func NewTrace() *Trace { return &Trace{rec: trace.NewWall()} }

// Track returns a named track for application-side annotations (instants and
// spans around Push/Pop calls, for example). Tracks are created on first use
// and are safe for use by one goroutine at a time.
func (t *Trace) Track(name string) *TraceTrack {
	return &TraceTrack{trk: t.rec.Track(name), now: t.rec.Now}
}

// WriteChrome writes everything recorded so far as Chrome trace-event JSON
// under the given process name. Call after the traced engines have quiesced
// (Unregister), or accept that in-flight spans may be missing.
func (t *Trace) WriteChrome(w io.Writer, process string) error {
	return trace.WriteChrome(w, t.rec.Snapshot(process))
}

// TraceTrack is an application-facing track handle, backed by either a
// Trace (unbounded) or a FlightRecorder (ring-buffered) track.
type TraceTrack struct {
	trk eventSink
	now func() uint64
}

// Instant marks a point event now.
func (t *TraceTrack) Instant(name string) { t.trk.Instant(name) }

// Begin starts a span; pass the returned start time to End.
func (t *TraceTrack) Begin() uint64 { return t.now() }

// End completes a span opened with Begin.
func (t *TraceTrack) End(name string, start uint64) { t.trk.Span(name, start) }

// Counter records a named value sample (rendered as a counter track).
func (t *TraceTrack) Counter(name string, v int64) { t.trk.Counter(name, v) }
