package cohort

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"cohort/internal/trace"
)

// This file is the native runtime's observability surface: a pull-based
// metrics registry over the runtime's allocation-free counters, a log2
// latency-histogram snapshot type, and a wall-clock trace recorder that
// writes the same Chrome trace-event JSON as the simulator — so a native run
// and a simulated run open side by side in Perfetto.

// Metric is one named counter sample.
type Metric struct {
	Name  string
	Value uint64
}

// SourceSnapshot is one registered source's counters at snapshot time.
type SourceSnapshot struct {
	Name    string
	Metrics []Metric
}

// Registry collects metric sources (queues, engines, adapters) and snapshots
// them on demand. Sources are polled only inside Snapshot/String, so
// registration adds zero cost to the instrumented hot paths. Safe for
// concurrent use.
type Registry struct {
	mu      sync.Mutex
	order   []string
	sources map[string]func() []Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: make(map[string]func() []Metric)}
}

// Register adds (or replaces) a named metric source. fn is called during
// Snapshot and must be safe to call at any time; for Fifo-backed sources the
// values are exact only when the queue's two sides are quiescent.
func (r *Registry) Register(name string, fn func() []Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sources[name]; !ok {
		r.order = append(r.order, name)
	}
	r.sources[name] = fn
}

// Unregister removes a source; unknown names are ignored.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sources[name]; !ok {
		return
	}
	delete(r.sources, name)
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// Snapshot polls every source in registration order.
func (r *Registry) Snapshot() []SourceSnapshot {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fns := make([]func() []Metric, len(names))
	for i, n := range names {
		fns[i] = r.sources[n]
	}
	r.mu.Unlock()
	// Poll outside the lock: a source callback may itself take locks.
	out := make([]SourceSnapshot, len(names))
	for i, n := range names {
		out[i] = SourceSnapshot{Name: n, Metrics: fns[i]()}
	}
	return out
}

// String renders the snapshot as an aligned two-column table, one section per
// source.
func (r *Registry) String() string {
	var b strings.Builder
	for _, s := range r.Snapshot() {
		fmt.Fprintf(&b, "%s:\n", s.Name)
		width := 0
		for _, m := range s.Metrics {
			if len(m.Name) > width {
				width = len(m.Name)
			}
		}
		for _, m := range s.Metrics {
			fmt.Fprintf(&b, "  %-*s %d\n", width, m.Name, m.Value)
		}
	}
	return b.String()
}

// RegisterFifo exposes a queue's FifoStats under the given source name.
// (A package function rather than a Registry method: methods cannot add type
// parameters.)
func RegisterFifo[T any](r *Registry, name string, q *Fifo[T]) {
	r.Register(name, func() []Metric {
		s := q.Stats()
		return []Metric{
			{"pushes", s.Pushes},
			{"pops", s.Pops},
			{"push_stalls", s.PushStalls},
			{"pop_stalls", s.PopStalls},
			{"high_water", s.HighWater},
		}
	})
}

// RegisterMpmc exposes a shared queue's MpmcStats under the given source name.
func RegisterMpmc[T any](r *Registry, name string, q *Mpmc[T]) {
	r.Register(name, func() []Metric {
		s := q.Stats()
		return []Metric{
			{"pushes", s.Pushes},
			{"pops", s.Pops},
		}
	})
}

// RegisterEngine exposes an engine's EngineStats under the given source name.
func RegisterEngine(r *Registry, name string, e *Engine) {
	r.Register(name, func() []Metric {
		s := e.StatsDetail()
		ms := []Metric{
			{"words_in", s.WordsIn},
			{"words_out", s.WordsOut},
			{"blocks", s.Blocks},
			{"wakeups", s.Wakeups},
			{"backoff_sleeps", s.BackoffSleeps},
			{"errors", s.Errors},
		}
		for i, c := range s.DrainNs.Buckets {
			if c != 0 {
				ms = append(ms, Metric{fmt.Sprintf("drain_ns_le_%d", uint64(1)<<i), c})
			}
		}
		return ms
	})
}

// LatencyHistogram is a log2-bucketed latency distribution in nanoseconds:
// Buckets[i] counts samples whose value has bit length i, i.e. lies in
// [2^(i-1), 2^i) ns (bucket 0 counts zero-duration samples).
type LatencyHistogram struct {
	Buckets [histoBuckets]uint64
}

// Samples returns the total number of recorded samples.
func (h LatencyHistogram) Samples() uint64 {
	var n uint64
	for _, c := range h.Buckets {
		n += c
	}
	return n
}

// String renders the nonzero buckets, one "<upper-bound>ns: count" pair per
// line, in ascending latency order.
func (h LatencyHistogram) String() string {
	var b strings.Builder
	for i, c := range h.Buckets {
		if c != 0 {
			fmt.Fprintf(&b, "<%dns: %d\n", uint64(1)<<i, c)
		}
	}
	if b.Len() == 0 {
		return "(no samples)\n"
	}
	return b.String()
}

// Trace is a wall-clock trace recorder for the native runtime. Attach
// engines with WithTrace at registration; their poll/drain/compute/publish/
// backoff activity lands on per-engine tracks, timestamped in microseconds
// since the recorder was created. Write the result with WriteChrome and open
// it at https://ui.perfetto.dev. Safe for concurrent use by any number of
// engines.
type Trace struct {
	rec *trace.Recorder
}

// NewTrace creates a recorder whose clock starts now.
func NewTrace() *Trace { return &Trace{rec: trace.NewWall()} }

// Track returns a named track for application-side annotations (instants and
// spans around Push/Pop calls, for example). Tracks are created on first use
// and are safe for use by one goroutine at a time.
func (t *Trace) Track(name string) *TraceTrack {
	return &TraceTrack{trk: t.rec.Track(name), rec: t.rec}
}

// WriteChrome writes everything recorded so far as Chrome trace-event JSON
// under the given process name. Call after the traced engines have quiesced
// (Unregister), or accept that in-flight spans may be missing.
func (t *Trace) WriteChrome(w io.Writer, process string) error {
	return trace.WriteChrome(w, t.rec.Snapshot(process))
}

// TraceTrack is an application-facing track handle.
type TraceTrack struct {
	trk *trace.Track
	rec *trace.Recorder
}

// Instant marks a point event now.
func (t *TraceTrack) Instant(name string) { t.trk.Instant(name) }

// Begin starts a span; pass the returned start time to End.
func (t *TraceTrack) Begin() uint64 { return t.rec.Now() }

// End completes a span opened with Begin.
func (t *TraceTrack) End(name string, start uint64) { t.trk.Span(name, start) }

// Counter records a named value sample (rendered as a counter track).
func (t *TraceTrack) Counter(name string, v int64) { t.trk.Counter(name, v) }
