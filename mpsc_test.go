package cohort

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"testing"
)

func TestMpmcBasics(t *testing.T) {
	q, err := NewMpmc[int](4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMpmc[int](0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	for i := 0; i < 4; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.TryPush(9) {
		t.Fatal("push into full queue succeeded")
	}
	for i := 0; i < 4; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d,%v", i, v, ok)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestMpmcWrapsManyLaps(t *testing.T) {
	q, _ := NewMpmc[uint64](8)
	for lap := uint64(0); lap < 1000; lap++ {
		q.Push(lap)
		if got := q.Pop(); got != lap {
			t.Fatalf("lap %d: got %d", lap, got)
		}
	}
}

func TestMpmcBlockTooBigPanics(t *testing.T) {
	q, _ := NewMpmc[int](4)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized block accepted")
		}
	}()
	q.PushBlock(make([]int, 9))
}

func TestMpmcConcurrentProducersPreserveAllElements(t *testing.T) {
	q, _ := NewMpmc[uint64](256)
	const producers = 8
	const perProducer = 5000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(uint64(p)<<32 | uint64(i))
			}
		}()
	}
	seen := make(map[uint64]bool, producers*perProducer)
	lastPerProducer := make([]int64, producers)
	for i := range lastPerProducer {
		lastPerProducer[i] = -1
	}
	for n := 0; n < producers*perProducer; n++ {
		v := q.Pop()
		if seen[v] {
			t.Fatalf("duplicate element %#x", v)
		}
		seen[v] = true
		who, seq := int(v>>32), int64(v&0xffffffff)
		if seq <= lastPerProducer[who] {
			t.Fatalf("producer %d reordered: %d after %d", who, seq, lastPerProducer[who])
		}
		lastPerProducer[who] = seq
	}
	wg.Wait()
}

func TestMpmcBlocksStayContiguous(t *testing.T) {
	q, _ := NewMpmc[uint64](64)
	const producers = 6
	const blocksEach = 400
	const blockLen = 4
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			blk := make([]uint64, blockLen)
			for b := 0; b < blocksEach; b++ {
				for i := range blk {
					blk[i] = uint64(p)<<32 | uint64(b)<<8 | uint64(i)
				}
				q.PushBlock(blk)
			}
		}()
	}
	for n := 0; n < producers*blocksEach; n++ {
		first := q.Pop()
		who, b := first>>32, first>>8&0xffffff
		if first&0xff != 0 {
			t.Fatalf("block did not start at word 0: %#x", first)
		}
		for i := uint64(1); i < blockLen; i++ {
			v := q.Pop()
			if v != who<<32|b<<8|i {
				t.Fatalf("block torn: word %d of producer %d block %d is %#x", i, who, b, v)
			}
		}
	}
	wg.Wait()
}

func TestMpmcTryPushDoesNotAllocate(t *testing.T) {
	// The scalar fast path must not build a 1-element slice per call.
	q, _ := NewMpmc[uint64](64)
	if n := testing.AllocsPerRun(200, func() {
		q.TryPush(1)
		q.TryPop()
	}); n != 0 {
		t.Fatalf("TryPush/TryPop allocate %.1f objects per op, want 0", n)
	}
}

func TestMpmcPopBlockBasics(t *testing.T) {
	q, _ := NewMpmc[int](8)
	dst := make([]int, 3)
	if q.TryPopBlock(dst) {
		t.Fatal("TryPopBlock succeeded on empty queue")
	}
	q.PushBlock([]int{1, 2})
	if q.TryPopBlock(dst) {
		t.Fatal("TryPopBlock(3) succeeded with only 2 queued")
	}
	q.Push(3)
	if !q.TryPopBlock(dst) || dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Fatalf("TryPopBlock = %v", dst)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after block pop", q.Len())
	}
	if !q.TryPopBlock(nil) {
		t.Fatal("zero-length block pop must trivially succeed")
	}
	// Many laps through the ring with block push + block pop.
	blk := make([]int, 4)
	for lap := 0; lap < 500; lap++ {
		q.PushBlock([]int{lap, lap + 1, lap + 2, lap + 3})
		q.PopBlock(blk)
		for i := range blk {
			if blk[i] != lap+i {
				t.Fatalf("lap %d word %d = %d", lap, i, blk[i])
			}
		}
	}
}

func TestMpmcPopBlockTooBigPanics(t *testing.T) {
	q, _ := NewMpmc[int](4)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized block pop accepted")
		}
	}()
	q.TryPopBlock(make([]int, 9))
}

func TestMpmcPopBlockKeepsProducerBlocksIntact(t *testing.T) {
	// Concurrent producers PushBlock; the consumer recovers whole blocks with
	// PopBlock — the bulk consume-side mirror of the contiguity guarantee.
	q, _ := NewMpmc[uint64](64)
	const producers = 4
	const blocksEach = 200
	const blockLen = 4
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			blk := make([]uint64, blockLen)
			for b := 0; b < blocksEach; b++ {
				for i := range blk {
					blk[i] = uint64(p)<<32 | uint64(b)<<8 | uint64(i)
				}
				q.PushBlock(blk)
			}
		}()
	}
	blk := make([]uint64, blockLen)
	for n := 0; n < producers*blocksEach; n++ {
		q.PopBlock(blk)
		who, b := blk[0]>>32, blk[0]>>8&0xffffff
		if blk[0]&0xff != 0 {
			t.Fatalf("block did not start at word 0: %#x", blk[0])
		}
		for i := uint64(1); i < blockLen; i++ {
			if blk[i] != who<<32|b<<8|i {
				t.Fatalf("block torn: word %d of producer %d block %d is %#x", i, who, b, blk[i])
			}
		}
	}
	wg.Wait()
}

func TestRegisterSharedSHAManyProducers(t *testing.T) {
	// §4.5 extension: several threads share one SHA accelerator through a
	// multi-producer queue; every block's digest must come back intact.
	in, err := NewMpmc[Word](128)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := NewFifo[Word](128)
	eng, err := RegisterShared(NewSHA256(), in, out)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Unregister()

	const producers = 4
	const blocksEach = 25
	makeBlock := func(p, b int) []byte {
		blk := make([]byte, 64)
		binary.LittleEndian.PutUint64(blk, uint64(p))
		binary.LittleEndian.PutUint64(blk[8:], uint64(b))
		for i := 16; i < 64; i++ {
			blk[i] = byte(p*31 + b*7 + i)
		}
		return blk
	}
	want := make(map[[32]byte]bool)
	for p := 0; p < producers; p++ {
		for b := 0; b < blocksEach; b++ {
			want[sha256.Sum256(makeBlock(p, b))] = true
		}
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < blocksEach; b++ {
				in.PushBlock(BytesToWords(makeBlock(p, b)))
			}
		}()
	}
	for n := 0; n < producers*blocksEach; n++ {
		var digest [32]byte
		copy(digest[:], WordsToBytes(out.PopN(4)))
		if !want[digest] {
			t.Fatalf("digest %d not among expected blocks (block torn by interleaving?)", n)
		}
		delete(want, digest)
	}
	wg.Wait()
	if len(want) != 0 {
		t.Fatalf("%d blocks never hashed", len(want))
	}
}

func TestRegisterSharedUnregisterStopsPump(t *testing.T) {
	in, _ := NewMpmc[Word](16)
	out, _ := NewFifo[Word](16)
	eng, err := RegisterShared(NewNull(), in, out)
	if err != nil {
		t.Fatal(err)
	}
	in.Push(1)
	if got := out.Pop(); got != 1 {
		t.Fatalf("got %d", got)
	}
	eng.Unregister()
	in.Push(2) // must not crash; pump exits
	if !bytes.Equal([]byte{}, []byte{}) {
		t.Fatal("unreachable")
	}
}
