package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"cohort/internal/cluster"
)

// This file is the client's side of fleet routing. The gateway proxy works
// with zero client changes — dial it like a single daemon — but it puts one
// extra hop under every Data frame. A client that opts in via
// Options.Cluster instead fetches the gateway's /ring snapshot, rebuilds the
// same consistent-hash ring locally (internal/cluster's ring is a pure
// function of the healthy member list, so client and gateway compute
// identical routes), and dials the tenant's shard directly. The gateway then
// serves only the routing metadata plane; the words never touch it.

// ClusterOptions configures client-side shard routing (Options.Cluster).
type ClusterOptions struct {
	// RingHTTP is the observability address ("host:port") serving /ring —
	// normally a cohortgw's -http address. Required.
	RingHTTP string
	// FetchTimeout bounds the ring fetch (default 2s).
	FetchTimeout time.Duration
	// Candidates is how many failover candidates an open may try, in ring
	// order (default 2). Matching the gateway's -replicas keeps direct and
	// proxied routing aligned.
	Candidates int
}

// RemoteAddr returns the address of the daemon this connection landed on —
// with Options.Cluster that is the shard chosen by the ring, not the
// gateway.
func (c *Conn) RemoteAddr() string { return c.c.RemoteAddr().String() }

// clusterConnect performs one routed dial + Open: fetch the ring, walk the
// tenant's candidates, connect directly. fallback is Connect's addr
// argument — the gateway's wire address, dialed as an ordinary proxied
// session when the ring metadata plane is unreachable.
func clusterConnect(fallback string, opts Options) (*Conn, error) {
	co := opts.Cluster
	sn, err := fetchRing(co)
	if err != nil {
		if fallback != "" {
			// The metadata plane is down but the proxy data path may not be:
			// degrade to a proxied session rather than failing the open.
			return connect(fallback, opts)
		}
		return nil, fmt.Errorf("cohort client: fetch ring: %w", err)
	}
	n := co.Candidates
	if n <= 0 {
		n = 2
	}
	cands := sn.Route(opts.Tenant, n)
	if len(cands) == 0 {
		// No healthy shard in the snapshot. Surface it as a drain-mode
		// rejection: immediately retryable, and the retry re-fetches the ring
		// — exactly what a rolling restart of the whole fleet needs.
		return nil, fmt.Errorf("%w (%w): ring has no healthy shards", ErrDraining, ErrRejected)
	}
	var lastErr error
	for _, cand := range cands {
		c, err := connect(cand.Addr, opts)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if errors.Is(err, ErrDraining) || errors.Is(err, ErrAdmission) || !errors.Is(err, ErrRejected) {
			// Routing refusal (the probe loop hasn't caught up yet) or a dead
			// shard: the next candidate may take the session.
			continue
		}
		// Terminal rejection (unknown accelerator, bad CSR): every shard
		// would answer the same.
		return nil, err
	}
	return nil, lastErr
}

// fetchRing retrieves and decodes the /ring snapshot.
func fetchRing(co *ClusterOptions) (*cluster.RingSnapshot, error) {
	if co.RingHTTP == "" {
		return nil, errors.New("cohort client: ClusterOptions.RingHTTP is required")
	}
	timeout := co.FetchTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	hc := &http.Client{Timeout: timeout}
	resp, err := hc.Get("http://" + co.RingHTTP + "/ring")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("ring endpoint returned status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	var sn cluster.RingSnapshot
	if err := json.Unmarshal(body, &sn); err != nil {
		return nil, fmt.Errorf("decode ring snapshot: %w", err)
	}
	return &sn, nil
}
