//go:build !race

package client_test

// raceEnabled gates allocation guards: sync.Pool randomly drops Puts when
// the race detector is on (see sync/pool.go), so pooled paths cannot be
// allocation-free under -race by design.
const raceEnabled = false
