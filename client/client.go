// Package client is the tenant-side library for cohortd: dial the daemon,
// open one accelerator session, stream words in, stream results out. It is
// the remote twin of holding a Fifo pair on a local Engine — the wire
// protocol (cohort/internal/wire) and the daemon's socket handling replace
// the shared-memory queues.
//
// A Conn carries exactly one session. The typical small-job shape:
//
//	c, err := client.Connect(addr, client.Options{Tenant: "me", Accel: "sha256"})
//	out, res, err := c.Stream(words)   // concurrent send + receive
//	c.Close()
//
// For long streams, call Send/Recv from two goroutines yourself (Stream does
// exactly that); a single goroutine alternating big Sends with no Recvs can
// deadlock once every buffer between the two ends fills — the daemon stops
// reading a session's socket when its input queue is full, which is the
// per-tenant backpressure design working as intended.
package client

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"cohort"
	"cohort/internal/wire"
)

// Options parameterizes the session carried by one connection. Accel names
// an entry in the daemon's catalog ("sha256", "aes128", ...); the remaining
// fields mirror sched.SessionConfig.
type Options struct {
	Tenant   string
	Accel    string
	CSR      []byte
	Weight   int
	Quota    uint64
	QueueCap int
	// DialTimeout bounds the TCP connect (default 5s).
	DialTimeout time.Duration
	// Reconnect, when > 0, retries Connect up to that many additional times
	// after a retryable failure — a dial error (daemon restarting) or an
	// admission-control rejection (ErrAdmission; capacity frees as other
	// sessions retire). Deliberate rejections (unknown accelerator, bad CSR)
	// are never retried.
	Reconnect int
	// ReconnectBackoff is the pause before the first reconnect attempt,
	// doubling per attempt (default 50ms).
	ReconnectBackoff time.Duration
	// ReconnectMax caps the doubling backoff (default 2s).
	ReconnectMax time.Duration
}

// ErrRejected wraps the daemon's refusal to open the session (admission
// control, unknown accelerator, bad CSR). Inspect with errors.Is and read
// the daemon's message with errors.Unwrap / Error.
var ErrRejected = errors.New("cohort client: session rejected")

// ErrAdmission is the typed form of an admission-control rejection: the
// daemon is at MaxSessions. It wraps ErrRejected (errors.Is matches both) and
// is the one rejection worth retrying — Options.Reconnect does so
// automatically.
var ErrAdmission = errors.New("cohort client: admission control full")

// ErrKilled: the daemon forcibly tore the session down mid-stream (operator
// kill, dead peer verdict). Results already received are valid; the stream is
// incomplete.
var ErrKilled = errors.New("cohort client: session killed")

// ErrFault: the session's accelerator failed terminally mid-stream and the
// scheduler contained the failure to this session. Results already received
// are valid unless the fault corrupted data silently — checksum at the
// application layer.
var ErrFault = errors.New("cohort client: accelerator fault")

// Conn is one open session. Send/CloseSend may run concurrently with Recv
// (one goroutine each); no method may be called concurrently with itself.
type Conn struct {
	c       net.Conn
	r       *wire.Reader
	w       *wire.Writer
	session uint64
	inW     int
	outW    int

	result  *wire.DoneReply
	recvErr error
}

// Connect dials the daemon and opens a session, retrying retryable failures
// per Options.Reconnect with a doubling backoff. A non-nil error means no
// session exists and nothing need be closed.
func Connect(addr string, opts Options) (*Conn, error) {
	if opts.Accel == "" {
		return nil, errors.New("cohort client: Options.Accel is required")
	}
	c, err := connect(addr, opts)
	if err == nil || opts.Reconnect <= 0 {
		return c, err
	}
	pause := opts.ReconnectBackoff
	if pause <= 0 {
		pause = 50 * time.Millisecond
	}
	maxPause := opts.ReconnectMax
	if maxPause <= 0 {
		maxPause = 2 * time.Second
	}
	for attempt := 0; attempt < opts.Reconnect && reconnectable(err); attempt++ {
		time.Sleep(pause)
		if pause *= 2; pause > maxPause {
			pause = maxPause
		}
		if c, err = connect(addr, opts); err == nil {
			return c, nil
		}
	}
	return nil, err
}

// reconnectable reports whether a Connect failure is worth retrying: dial
// errors and admission-control rejections are; deliberate rejections
// (unknown accelerator, bad CSR) are final.
func reconnectable(err error) bool {
	if errors.Is(err, ErrAdmission) {
		return true
	}
	return !errors.Is(err, ErrRejected)
}

// connect performs one dial + Open handshake.
func connect(addr string, opts Options) (*Conn, error) {
	timeout := opts.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("cohort client: dial %s: %w", addr, err)
	}
	c := &Conn{c: nc, r: wire.NewReader(nc), w: wire.NewWriter(nc)}
	if err := c.w.JSON(wire.Open, wire.OpenRequest{
		Tenant: opts.Tenant, Accel: opts.Accel, CSR: opts.CSR,
		Weight: opts.Weight, Quota: opts.Quota, QueueCap: opts.QueueCap,
	}); err != nil {
		nc.Close()
		return nil, fmt.Errorf("cohort client: send open: %w", err)
	}
	t, payload, err := c.r.Next()
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("cohort client: await open reply: %w", err)
	}
	switch t {
	case wire.OpenOK:
		var rep wire.OpenReply
		if err := wire.Unmarshal(t, payload, &rep); err != nil {
			nc.Close()
			return nil, err
		}
		c.session, c.inW, c.outW = rep.Session, rep.InWords, rep.OutWords
		return c, nil
	case wire.Error:
		var rej wire.ErrorReply
		if err := wire.Unmarshal(t, payload, &rej); err != nil {
			nc.Close()
			return nil, err
		}
		nc.Close()
		if rej.Code == wire.CodeAdmission {
			return nil, fmt.Errorf("%w (%w): %s", ErrAdmission, ErrRejected, rej.Message)
		}
		return nil, fmt.Errorf("%w: %s", ErrRejected, rej.Message)
	default:
		nc.Close()
		return nil, fmt.Errorf("cohort client: unexpected %s frame before open reply", t)
	}
}

// Session returns the daemon-assigned session id.
func (c *Conn) Session() uint64 { return c.session }

// InWords returns the accelerator's input block size in words.
func (c *Conn) InWords() int { return c.inW }

// OutWords returns the accelerator's output block size in words.
func (c *Conn) OutWords() int { return c.outW }

// Send streams ws to the session. Words need not align to blocks per call;
// the daemon assembles blocks across frames.
func (c *Conn) Send(ws []cohort.Word) error {
	if err := c.w.Words(ws); err != nil {
		return fmt.Errorf("cohort client: send data: %w", err)
	}
	return nil
}

// CloseSend ends the outbound stream: the daemon finishes every complete
// block already sent, drops a trailing partial block, and replies with the
// remaining results and a final Done. Call exactly once, after the last
// Send.
func (c *Conn) CloseSend() error {
	if err := c.w.Frame(wire.CloseSend, nil); err != nil {
		return fmt.Errorf("cohort client: close send: %w", err)
	}
	return nil
}

// Recv returns the next chunk of result words. It returns io.EOF once the
// stream is complete — after which Result holds the session's final
// counters. The returned slice is owned by the caller.
func (c *Conn) Recv() ([]cohort.Word, error) {
	if c.result != nil {
		return nil, io.EOF
	}
	if c.recvErr != nil {
		return nil, c.recvErr
	}
	for {
		t, payload, err := c.r.Next()
		if err != nil {
			c.recvErr = fmt.Errorf("cohort client: recv: %w", err)
			return nil, c.recvErr
		}
		switch t {
		case wire.Data:
			if len(payload) == 0 {
				continue
			}
			return wire.Words(payload)
		case wire.Done:
			var done wire.DoneReply
			if err := wire.Unmarshal(t, payload, &done); err != nil {
				c.recvErr = err
				return nil, err
			}
			c.result = &done
			if done.Err != "" {
				c.recvErr = fmt.Errorf("cohort client: session ended: %s", done.Err)
				return nil, c.recvErr
			}
			return nil, io.EOF
		case wire.Error:
			// The session died mid-stream; the server said why instead of
			// just resetting the connection. Map the code to a typed error.
			var rej wire.ErrorReply
			if err := wire.Unmarshal(t, payload, &rej); err != nil {
				c.recvErr = err
				return nil, err
			}
			switch rej.Code {
			case wire.CodeKilled:
				c.recvErr = fmt.Errorf("%w: %s", ErrKilled, rej.Message)
			case wire.CodeFault:
				c.recvErr = fmt.Errorf("%w: %s", ErrFault, rej.Message)
			default:
				c.recvErr = fmt.Errorf("cohort client: session ended: %s", rej.Message)
			}
			return nil, c.recvErr
		default:
			c.recvErr = fmt.Errorf("cohort client: unexpected %s frame in result stream", t)
			return nil, c.recvErr
		}
	}
}

// Result returns the daemon's final session counters. Nil until Recv has
// returned io.EOF (or a session-ended error).
func (c *Conn) Result() *wire.DoneReply { return c.result }

// Stream runs a whole job: sends in (concurrently), closes the outbound
// stream, and collects every result word until the daemon's Done. It is the
// one-call path for jobs whose output fits in memory.
func (c *Conn) Stream(in []cohort.Word) ([]cohort.Word, *wire.DoneReply, error) {
	sendErr := make(chan error, 1)
	go func() {
		// Chunked so neither end needs a frame buffer proportional to the job.
		const chunk = 4096
		for len(in) > 0 {
			n := len(in)
			if n > chunk {
				n = chunk
			}
			if err := c.Send(in[:n]); err != nil {
				sendErr <- err
				return
			}
			in = in[n:]
		}
		sendErr <- c.CloseSend()
	}()
	var out []cohort.Word
	var recvErr error
	for {
		ws, err := c.Recv()
		if err != nil {
			if err != io.EOF {
				recvErr = err
			}
			break
		}
		out = append(out, ws...)
	}
	// The send goroutine cannot still be blocked: the daemon has sent Done,
	// so its reader consumed (or discarded) everything we wrote.
	if err := <-sendErr; err != nil && recvErr == nil {
		recvErr = err
	}
	return out, c.result, recvErr
}

// Close releases the connection. A session whose stream was not finished
// with CloseSend is killed by the daemon on disconnect.
func (c *Conn) Close() error { return c.c.Close() }
