// Package client is the tenant-side library for cohortd: dial the daemon,
// open one accelerator session, stream words in, stream results out. It is
// the remote twin of holding a Fifo pair on a local Engine — the wire
// protocol (cohort/internal/wire) and the daemon's socket handling replace
// the shared-memory queues.
//
// A Conn carries exactly one session. The typical small-job shape:
//
//	c, err := client.Connect(addr, client.Options{Tenant: "me", Accel: "sha256"})
//	out, res, err := c.Stream(words)   // concurrent send + receive
//	c.Close()
//
// For long streams, call Send/Recv from two goroutines yourself (Stream does
// exactly that); a single goroutine alternating big Sends with no Recvs can
// deadlock once every buffer between the two ends fills — the daemon stops
// reading a session's socket when its input queue is full, which is the
// per-tenant backpressure design working as intended.
package client

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"cohort"
	"cohort/internal/wire"
)

// Options parameterizes the session carried by one connection. Accel names
// an entry in the daemon's catalog ("sha256", "aes128", ...); the remaining
// fields mirror sched.SessionConfig.
type Options struct {
	Tenant   string
	Accel    string
	CSR      []byte
	Weight   int
	Quota    uint64
	QueueCap int
	// DialTimeout bounds the TCP connect (default 5s).
	DialTimeout time.Duration
	// Reconnect, when > 0, retries Connect up to that many additional times
	// after a retryable failure — a dial error (daemon restarting) or an
	// admission-control rejection (ErrAdmission; capacity frees as other
	// sessions retire). Deliberate rejections (unknown accelerator, bad CSR)
	// are never retried.
	Reconnect int
	// ReconnectBackoff is the pause before the first reconnect attempt,
	// doubling per attempt (default 50ms).
	ReconnectBackoff time.Duration
	// ReconnectMax caps the doubling backoff (default 2s).
	ReconnectMax time.Duration
	// LegacyCodec selects the pre-coalescing wire codec: copy-framed sends
	// and an allocation per received frame, exactly the pre-batching client
	// hot path. Kept so cohortload can A/B the zero-copy path against what
	// it replaced; never set it in production.
	LegacyCodec bool
	// ServerTiming asks the daemon for its server-side latency attribution:
	// sampled stage breakdowns (queue wait, scheduler dispatch, compute, wire
	// egress) arrive as occasional Telemetry frames mid-stream and finally on
	// Done. Read the latest with Conn.LastServerTiming; subtracting the
	// server-resident time from an end-to-end measurement isolates network +
	// client-side cost. Off by default — old daemons ignore unknown JSON
	// fields and simply never send timing.
	ServerTiming bool
	// Cluster, when set, turns on client-side shard routing: Connect fetches
	// the gateway's /ring snapshot, rebuilds the consistent-hash ring locally,
	// and dials the tenant's owning shard directly — the data path skips the
	// gateway proxy hop entirely. The addr argument to Connect becomes the
	// fallback wire address (normally the gateway's), used when the ring
	// cannot be fetched. See ClusterOptions.
	Cluster *ClusterOptions
}

// ErrRejected wraps the daemon's refusal to open the session (admission
// control, unknown accelerator, bad CSR). Inspect with errors.Is and read
// the daemon's message with errors.Unwrap / Error.
var ErrRejected = errors.New("cohort client: session rejected")

// ErrAdmission is the typed form of an admission-control rejection: the
// daemon is at MaxSessions. It wraps ErrRejected (errors.Is matches both) and
// is the one rejection worth retrying — Options.Reconnect does so
// automatically.
var ErrAdmission = errors.New("cohort client: admission control full")

// ErrDraining is the typed form of a drain-mode rejection: the daemon is
// draining for a rolling restart — it admits nothing new but is still
// flushing in-flight sessions. It wraps ErrRejected (errors.Is matches both)
// and, unlike ErrAdmission, there is nothing to wait for: the right move is
// to go to another shard immediately, so Options.Reconnect retries it with
// no pause and no backoff doubling (through a gateway or with
// Options.Cluster routing, the next attempt lands elsewhere).
var ErrDraining = errors.New("cohort client: daemon draining")

// ErrKilled: the daemon forcibly tore the session down mid-stream (operator
// kill, dead peer verdict). Results already received are valid; the stream is
// incomplete.
var ErrKilled = errors.New("cohort client: session killed")

// ErrFault: the session's accelerator failed terminally mid-stream and the
// scheduler contained the failure to this session. Results already received
// are valid unless the fault corrupted data silently — checksum at the
// application layer.
var ErrFault = errors.New("cohort client: accelerator fault")

// Conn is one open session. Send/CloseSend may run concurrently with Recv,
// RecvInto (one goroutine each side); no method may be called concurrently
// with itself or, on the same side, with each other.
type Conn struct {
	c       net.Conn
	r       *wire.Reader
	w       *wire.Writer
	session uint64
	inW     int
	outW    int
	legacy  bool

	// pending is the unconsumed tail of the last received Data frame (it
	// aliases the reader's pooled buffer on the fast path), carried across
	// RecvInto calls smaller than a frame.
	pending []cohort.Word
	result  *wire.DoneReply
	recvErr error

	// timing is the most recent server-side stage breakdown (Telemetry frame
	// or DoneReply.Timing); atomic so any goroutine may read it while the
	// receive loop runs.
	timing atomic.Pointer[wire.TelemetryReply]
}

// Connect dials the daemon and opens a session, retrying retryable failures
// per Options.Reconnect with a doubling backoff. A non-nil error means no
// session exists and nothing need be closed.
func Connect(addr string, opts Options) (*Conn, error) {
	if opts.Accel == "" {
		return nil, errors.New("cohort client: Options.Accel is required")
	}
	dial := func() (*Conn, error) { return connect(addr, opts) }
	if opts.Cluster != nil {
		// Client-side routing: fetch the ring, dial the shard directly.
		dial = func() (*Conn, error) { return clusterConnect(addr, opts) }
	}
	c, err := dial()
	if err == nil || opts.Reconnect <= 0 {
		return c, err
	}
	pause := opts.ReconnectBackoff
	if pause <= 0 {
		pause = 50 * time.Millisecond
	}
	maxPause := opts.ReconnectMax
	if maxPause <= 0 {
		maxPause = 2 * time.Second
	}
	for attempt := 0; attempt < opts.Reconnect && reconnectable(err); attempt++ {
		if !errors.Is(err, ErrDraining) {
			// ErrDraining retries immediately and leaves the backoff untouched:
			// waiting cannot help a shard that has stopped admitting, and the
			// next attempt goes to a different shard through a routing tier.
			time.Sleep(pause)
			if pause *= 2; pause > maxPause {
				pause = maxPause
			}
		}
		if c, err = dial(); err == nil {
			return c, nil
		}
	}
	return nil, err
}

// reconnectable reports whether a Connect failure is worth retrying: dial
// errors, admission-control rejections, and drain-mode rejections are;
// deliberate rejections (unknown accelerator, bad CSR) are final.
func reconnectable(err error) bool {
	if errors.Is(err, ErrAdmission) || errors.Is(err, ErrDraining) {
		return true
	}
	return !errors.Is(err, ErrRejected)
}

// connect performs one dial + Open handshake.
func connect(addr string, opts Options) (*Conn, error) {
	timeout := opts.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("cohort client: dial %s: %w", addr, err)
	}
	c := &Conn{c: nc, r: wire.NewReader(nc), w: wire.NewWriter(nc), legacy: opts.LegacyCodec}
	if err := c.w.JSON(wire.Open, wire.OpenRequest{
		Tenant: opts.Tenant, Accel: opts.Accel, CSR: opts.CSR,
		Weight: opts.Weight, Quota: opts.Quota, QueueCap: opts.QueueCap,
		Timing: opts.ServerTiming,
	}); err != nil {
		nc.Close()
		return nil, fmt.Errorf("cohort client: send open: %w", err)
	}
	t, payload, err := c.r.Next()
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("cohort client: await open reply: %w", err)
	}
	switch t {
	case wire.OpenOK:
		var rep wire.OpenReply
		if err := wire.Unmarshal(t, payload, &rep); err != nil {
			nc.Close()
			return nil, err
		}
		c.session, c.inW, c.outW = rep.Session, rep.InWords, rep.OutWords
		return c, nil
	case wire.Error:
		var rej wire.ErrorReply
		if err := wire.Unmarshal(t, payload, &rej); err != nil {
			nc.Close()
			return nil, err
		}
		nc.Close()
		switch rej.Code {
		case wire.CodeAdmission:
			return nil, fmt.Errorf("%w (%w): %s", ErrAdmission, ErrRejected, rej.Message)
		case wire.CodeDraining:
			return nil, fmt.Errorf("%w (%w): %s", ErrDraining, ErrRejected, rej.Message)
		}
		return nil, fmt.Errorf("%w: %s", ErrRejected, rej.Message)
	default:
		nc.Close()
		return nil, fmt.Errorf("cohort client: unexpected %s frame before open reply", t)
	}
}

// Session returns the daemon-assigned session id.
func (c *Conn) Session() uint64 { return c.session }

// InWords returns the accelerator's input block size in words.
func (c *Conn) InWords() int { return c.inW }

// OutWords returns the accelerator's output block size in words.
func (c *Conn) OutWords() int { return c.outW }

// Send streams ws as one Data frame. Words need not align to blocks per
// call; the daemon assembles blocks across frames. On little-endian hosts ws
// is handed to the kernel zero-copy (header and payload in one writev); it is
// not retained — the caller may reuse it as soon as Send returns. Batching
// many blocks per Send is the single biggest lever on serving throughput:
// one frame and one syscall amortize over every block in the slice.
func (c *Conn) Send(ws []cohort.Word) error {
	var err error
	if c.legacy {
		err = c.w.WordsCopy(ws)
	} else {
		err = c.w.Words(ws)
	}
	if err != nil {
		return fmt.Errorf("cohort client: send data: %w", err)
	}
	return nil
}

// SendN coalesces several word slices into a single Data frame (one writev,
// no joining copy) — for producers whose pending blocks live in scattered
// buffers, e.g. a queue's two ring segments.
func (c *Conn) SendN(segs ...[]cohort.Word) error {
	if err := c.w.WordsN(segs...); err != nil {
		return fmt.Errorf("cohort client: send data: %w", err)
	}
	return nil
}

// CloseSend ends the outbound stream: the daemon finishes every complete
// block already sent, drops a trailing partial block, and replies with the
// remaining results and a final Done. Call exactly once, after the last
// Send.
func (c *Conn) CloseSend() error {
	if err := c.w.Frame(wire.CloseSend, nil); err != nil {
		return fmt.Errorf("cohort client: close send: %w", err)
	}
	return nil
}

// nextData advances the result stream to the next non-empty Data frame,
// absorbing Done and Error frames along the way. On the fast path the
// returned slice aliases the wire reader's pooled buffer: it is valid until
// the next read and must not be handed to the application without a copy.
func (c *Conn) nextData() ([]cohort.Word, error) {
	if c.result != nil {
		return nil, io.EOF
	}
	if c.recvErr != nil {
		return nil, c.recvErr
	}
	for {
		var t wire.Type
		var ws []cohort.Word
		var payload []byte
		var err error
		if c.legacy {
			t, payload, err = c.r.Next()
		} else {
			t, ws, payload, err = c.r.NextData()
		}
		if err != nil {
			c.recvErr = fmt.Errorf("cohort client: recv: %w", err)
			return nil, c.recvErr
		}
		switch t {
		case wire.Data:
			if c.legacy {
				if ws, err = wire.Words(payload); err != nil {
					c.recvErr = err
					return nil, err
				}
			}
			if len(ws) == 0 {
				continue
			}
			return ws, nil
		case wire.Telemetry:
			// Server-side stage breakdown (requested via Options.ServerTiming):
			// keep the latest and keep streaming. Absorbed here so Recv loops
			// never see a non-Data frame mid-stream.
			var tel wire.TelemetryReply
			if err := wire.Unmarshal(t, payload, &tel); err != nil {
				c.recvErr = err
				return nil, err
			}
			c.timing.Store(&tel)
			continue
		case wire.Done:
			var done wire.DoneReply
			if err := wire.Unmarshal(t, payload, &done); err != nil {
				c.recvErr = err
				return nil, err
			}
			c.result = &done
			if done.Timing != nil {
				c.timing.Store(done.Timing)
			}
			if done.Err != "" {
				c.recvErr = fmt.Errorf("cohort client: session ended: %s", done.Err)
				return nil, c.recvErr
			}
			return nil, io.EOF
		case wire.Error:
			// The session died mid-stream; the server said why instead of
			// just resetting the connection. Map the code to a typed error.
			var rej wire.ErrorReply
			if err := wire.Unmarshal(t, payload, &rej); err != nil {
				c.recvErr = err
				return nil, err
			}
			switch rej.Code {
			case wire.CodeKilled:
				c.recvErr = fmt.Errorf("%w: %s", ErrKilled, rej.Message)
			case wire.CodeFault:
				c.recvErr = fmt.Errorf("%w: %s", ErrFault, rej.Message)
			default:
				c.recvErr = fmt.Errorf("cohort client: session ended: %s", rej.Message)
			}
			return nil, c.recvErr
		default:
			c.recvErr = fmt.Errorf("cohort client: unexpected %s frame in result stream", t)
			return nil, c.recvErr
		}
	}
}

// Recv returns the next chunk of result words. It returns io.EOF once the
// stream is complete — after which Result holds the session's final
// counters. The returned slice is owned by the caller. Hot loops that can
// reuse a buffer should prefer RecvInto, which skips this method's per-chunk
// allocation.
func (c *Conn) Recv() ([]cohort.Word, error) {
	ws := c.pending
	if len(ws) == 0 {
		var err error
		if ws, err = c.nextData(); err != nil {
			return nil, err
		}
	}
	c.pending = nil
	if c.legacy {
		// Legacy decode already allocated a fresh slice; hand it over.
		return ws, nil
	}
	out := make([]cohort.Word, len(ws))
	copy(out, ws)
	c.r.Release()
	return out, nil
}

// RecvInto fills buf with the next result words and returns how many were
// written — the zero-allocation receive: frames decode into pooled wire
// buffers and copy once into buf, and a frame larger than buf carries over
// to the next call. Returns io.EOF exactly like Recv. buf must not be empty.
func (c *Conn) RecvInto(buf []cohort.Word) (int, error) {
	if len(buf) == 0 {
		return 0, errors.New("cohort client: RecvInto with empty buffer")
	}
	ws := c.pending
	if len(ws) == 0 {
		var err error
		if ws, err = c.nextData(); err != nil {
			return 0, err
		}
	}
	n := copy(buf, ws)
	if n < len(ws) {
		c.pending = ws[n:]
	} else {
		c.pending = nil
		c.r.Release()
	}
	return n, nil
}

// Result returns the daemon's final session counters. Nil until Recv has
// returned io.EOF (or a session-ended error).
func (c *Conn) Result() *wire.DoneReply { return c.result }

// LastServerTiming returns the most recent server-side stage breakdown the
// daemon has sent for this session — nil until the first Telemetry frame
// arrives (the session must have been opened with Options.ServerTiming and
// have served enough quanta to be sampled). The final Done refreshes it with
// whole-session figures. Safe to call from any goroutine.
func (c *Conn) LastServerTiming() *wire.TelemetryReply { return c.timing.Load() }

// Stream runs a whole job: sends in (concurrently), closes the outbound
// stream, and collects every result word until the daemon's Done. It is the
// one-call path for jobs whose output fits in memory.
func (c *Conn) Stream(in []cohort.Word) ([]cohort.Word, *wire.DoneReply, error) {
	sendErr := make(chan error, 1)
	go func() {
		// Chunked so neither end needs a frame buffer proportional to the job.
		const chunk = 4096
		for len(in) > 0 {
			n := len(in)
			if n > chunk {
				n = chunk
			}
			if err := c.Send(in[:n]); err != nil {
				sendErr <- err
				return
			}
			in = in[n:]
		}
		sendErr <- c.CloseSend()
	}()
	var out []cohort.Word
	var recvErr error
	buf := make([]cohort.Word, 4096)
	for {
		n, err := c.RecvInto(buf)
		if err != nil {
			if err != io.EOF {
				recvErr = err
			}
			break
		}
		out = append(out, buf[:n]...)
	}
	// The send goroutine cannot still be blocked: the daemon has sent Done,
	// so its reader consumed (or discarded) everything we wrote.
	if err := <-sendErr; err != nil && recvErr == nil {
		recvErr = err
	}
	return out, c.result, recvErr
}

// Close releases the connection. A session whose stream was not finished
// with CloseSend is killed by the daemon on disconnect.
func (c *Conn) Close() error { return c.c.Close() }
