package client_test

import (
	"io"
	"net"
	"testing"
	"time"

	"cohort"
	"cohort/client"
	"cohort/internal/sched"
	"cohort/internal/telem"
)

// echoAcc is a block pass-through whose result slice reuses a fixed backing
// array, so Process itself is allocation-free (the serving twin of the one
// in the root package's allocs_test.go).
type echoAcc struct{ out []cohort.Word }

func newEcho(block int) *echoAcc { return &echoAcc{out: make([]cohort.Word, block)} }

func (e *echoAcc) Name() string               { return "echo" }
func (e *echoAcc) InWords() int               { return len(e.out) }
func (e *echoAcc) OutWords() int              { return len(e.out) }
func (e *echoAcc) Configure(csr []byte) error { return nil }
func (e *echoAcc) Process(in []cohort.Word) ([]cohort.Word, error) {
	copy(e.out, in)
	return e.out, nil
}

// startLoopback brings up a real scheduler and TCP server on 127.0.0.1 with
// an "echo" catalog entry of the given block size. A non-nil registry wires
// the scheduler's metric sources, as cohortd does.
func startLoopback(tb testing.TB, block int, legacyWire bool, reg *cohort.Registry) (addr string, stop func()) {
	tb.Helper()
	s := sched.New(sched.Config{Engines: 1, Quantum: 64, QueueCap: 16384, Registry: reg})
	catalog := sched.Catalog{
		"echo": func() (cohort.Accelerator, error) { return newEcho(block), nil },
	}
	sv := sched.NewServer(s, catalog)
	sv.LegacyWire = legacyWire
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go sv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on stop
	return ln.Addr().String(), func() {
		sv.Close()
		s.Close()
	}
}

// TestServeSteadyStateAllocs pins the serving twin of the root package's
// zero-allocation guard: a warmed send→sched→recv round trip over a real
// TCP loopback connection — client zero-copy Send, server pooled decode and
// whole-frame queue push, one scheduler quantum, coalesced writev result
// pump, client RecvInto — performs no heap allocations at all, on either
// end (AllocsPerRun measures the whole process, so the server's goroutines
// are inside the guard too).
func TestServeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector; zero-alloc steady state holds only in normal builds")
	}
	const block = 64
	// Run the guard under production observability: the scheduler publishes
	// its sources into a registry and the windowed telemetry sampler ticks
	// against it concurrently. The sampler's own per-tick allocations happen
	// on its goroutine a handful of times during the measurement — far fewer
	// than the run count — so the per-run average still pins the serving hot
	// path itself at zero.
	reg := cohort.NewRegistry()
	addr, stop := startLoopback(t, block, false, reg)
	defer stop()
	sampler := telem.New(telem.Config{Registry: reg, Tick: 100 * time.Millisecond})
	sampler.Start()
	defer sampler.Stop()

	c, err := client.Connect(addr, client.Options{Tenant: "allocs", Accel: "echo"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	in := make([]cohort.Word, block)
	for i := range in {
		in[i] = cohort.Word(i) * 2654435761
	}
	res := make([]cohort.Word, block)
	step := func() {
		if err := c.Send(in); err != nil {
			t.Fatal(err)
		}
		for got := 0; got < block; {
			n, err := c.RecvInto(res[got:])
			if err != nil {
				t.Fatal(err)
			}
			got += n
		}
	}
	// Warm past one-time costs: connection buffers, pool seeding, goroutine
	// stack growth, the kernel's cached iovec array for writev.
	for i := 0; i < 256; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(256, step); avg != 0 {
		t.Errorf("steady-state serving round trip allocates: %.2f allocs/run, want 0", avg)
	}
}

// TestRecvIntoCarry: a Data frame larger than the RecvInto buffer carries
// over across calls, in order, with no words lost.
func TestRecvIntoCarry(t *testing.T) {
	const block = 8
	addr, stop := startLoopback(t, block, false, nil)
	defer stop()
	c, err := client.Connect(addr, client.Options{Tenant: "carry", Accel: "echo"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const blocks = 64
	in := make([]cohort.Word, blocks*block)
	for i := range in {
		in[i] = cohort.Word(i) + 1
	}
	if err := c.Send(in); err != nil { // 64 blocks in one coalesced frame
		t.Fatal(err)
	}
	if err := c.CloseSend(); err != nil {
		t.Fatal(err)
	}
	var out []cohort.Word
	tiny := make([]cohort.Word, 3) // deliberately smaller than any frame
	for {
		n, err := c.RecvInto(tiny)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tiny[:n]...)
	}
	if len(out) != len(in) {
		t.Fatalf("received %d words, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("word %d = %d, want %d", i, out[i], in[i])
		}
	}
	if res := c.Result(); res == nil || res.Blocks != blocks {
		t.Fatalf("result %+v, want %d blocks", res, blocks)
	}
}

// TestLegacyCodecRoundTrip: the A/B legacy codec still speaks the same
// protocol against the batched server path.
func TestLegacyCodecRoundTrip(t *testing.T) {
	const block = 16
	addr, stop := startLoopback(t, block, false, nil)
	defer stop()
	c, err := client.Connect(addr, client.Options{Tenant: "legacy", Accel: "echo", LegacyCodec: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	in := make([]cohort.Word, 4*block)
	for i := range in {
		in[i] = ^cohort.Word(i)
	}
	out, res, err := c.Stream(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d words, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("word %d mismatch", i)
		}
	}
	if res.Blocks != 4 {
		t.Fatalf("blocks = %d, want 4", res.Blocks)
	}
}

// benchLoopback streams b.N blocks through a real TCP session, sending
// sendBatch words per frame — the A/B harness behind the README's serving
// table. CI logs these next to the wire microbenches.
func benchLoopback(b *testing.B, legacy bool, block, sendBatch int) {
	addr, stop := startLoopback(b, block, legacy, nil)
	defer stop()
	c, err := client.Connect(addr, client.Options{Tenant: "bench", Accel: "echo", LegacyCodec: legacy})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	total := b.N * block
	in := make([]cohort.Word, sendBatch)
	res := make([]cohort.Word, 65536)
	b.SetBytes(int64(block * 8))
	b.ResetTimer()
	go func() {
		for sent := 0; sent < total; {
			n := sendBatch
			if rem := total - sent; n > rem {
				n = rem
			}
			if err := c.Send(in[:n]); err != nil {
				return
			}
			sent += n
		}
		c.CloseSend() //nolint:errcheck // receiver surfaces stream errors
	}()
	for got := 0; got < total; {
		n, err := c.RecvInto(res)
		if err != nil {
			b.Fatal(err)
		}
		got += n
	}
}

func BenchmarkLoopbackBlock64Legacy(b *testing.B)    { benchLoopback(b, true, 64, 64) }
func BenchmarkLoopbackBlock64Batched(b *testing.B)   { benchLoopback(b, false, 64, 4096) }
func BenchmarkLoopbackBlock64ZeroCopy(b *testing.B)  { benchLoopback(b, false, 64, 64) }
func BenchmarkLoopbackBlock4096Batched(b *testing.B) { benchLoopback(b, false, 4096, 4096) }
