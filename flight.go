package cohort

import (
	"io"
	"sync"
	"sync/atomic"

	"cohort/internal/trace"
)

// eventSink is the common writer interface of the two recorder flavours an
// engine or application track can emit into: the unbounded *trace.Track
// (WithTrace) and the fixed-memory *trace.FlightTrack (WithFlightRecorder).
type eventSink interface {
	Instant(name string)
	Span(name string, start uint64)
	SpanAt(name string, start, dur uint64)
	Counter(name string, v int64)
}

// FlightRecorder is always-on, fixed-memory tracing for long-running
// services — the black box to Trace's lab recorder. Engines attached with
// WithFlightRecorder emit the same poll/backoff/drain/compute/publish spans
// as WithTrace, but into a bounded per-track ring that keeps only the most
// recent events: memory never grows, so the recorder can stay enabled for
// the life of the process.
//
// The ring can be snapshotted at any moment (WriteChrome), and it dumps
// itself automatically when something goes wrong: an engine parking with a
// terminal accelerator error triggers AutoDump, as does a Watchdog-detected
// stall — giving a Perfetto-loadable view of the last moments before the
// failure. Wire the dump destination with SetAutoDump.
//
// Safe for concurrent use by any number of engines; writes take only the
// written track's own mutex.
type FlightRecorder struct {
	fl    *trace.Flight
	dumps atomic.Uint64

	mu     sync.Mutex
	sink   io.Writer
	onDump func(reason string)
}

// NewFlightRecorder creates a flight recorder keeping the last
// perTrackEvents events of every track (values below 1 are raised to 1).
// Its clock starts now, in wall-clock microseconds.
func NewFlightRecorder(perTrackEvents int) *FlightRecorder {
	return &FlightRecorder{fl: trace.NewFlightWall(perTrackEvents)}
}

// Track returns a named track for application-side annotations, like
// Trace.Track but ring-buffered. Unlike Trace tracks, flight tracks are safe
// for concurrent writers.
func (f *FlightRecorder) Track(name string) *TraceTrack {
	return &TraceTrack{trk: f.fl.Track(name), now: f.fl.Now}
}

// WriteChrome writes the ring contents — the last N events of every track,
// oldest first — as Chrome trace-event JSON under the given process name.
// Safe to call at any time, including while engines are running.
func (f *FlightRecorder) WriteChrome(w io.Writer, process string) error {
	return trace.WriteChrome(w, f.fl.Snapshot(process))
}

// SetAutoDump wires the automatic failure dump: when an attached engine
// parks with a terminal error (or AutoDump is called explicitly, e.g. by a
// Watchdog), the ring is serialized as Chrome trace JSON to w and then
// onDump, if non-nil, is invoked with a human-readable reason. Either
// argument may be nil to skip that half. w must be safe for a single
// serialized write at arbitrary times (an os.File is fine).
func (f *FlightRecorder) SetAutoDump(w io.Writer, onDump func(reason string)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sink = w
	f.onDump = onDump
}

// AutoDump snapshots the ring to the configured sink, labelling the trace's
// process with reason, and invokes the configured callback. Dumps are
// serialized; errors writing to the sink are ignored (the process is already
// failing — the dump is best-effort).
func (f *FlightRecorder) AutoDump(reason string) {
	f.dumps.Add(1)
	f.mu.Lock()
	sink, onDump := f.sink, f.onDump
	if sink != nil {
		_ = trace.WriteChrome(sink, f.fl.Snapshot("flight: "+reason))
	}
	f.mu.Unlock()
	if onDump != nil {
		onDump(reason)
	}
}

// Dumps returns how many automatic (or explicit) dumps have fired.
func (f *FlightRecorder) Dumps() uint64 { return f.dumps.Load() }
