package cohort

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Watchdog is a background stall monitor for the native runtime: the
// software analogue of a hardware engine's liveness counter. It periodically
// samples every watched engine's progress counters; an engine that has input
// pending but moves no words and processes no blocks for a whole window is
// declared stalled — the `stalls` counter increments, the configured
// callback fires, and, when a FlightRecorder is wired, the recorder ring is
// dumped so the last moments before the wedge are inspectable in Perfetto.
//
// Stall detection is edge-triggered: one stall is counted per transition
// into the stalled state, and an engine that resumes making progress is
// healthy again (and can stall again later). An engine with no pending
// work — nothing queued in its input fifo and nothing drained-but-
// unprocessed in its batch buffer — is idle, not stalled: a service
// waiting for traffic stays healthy no matter how long the lull. An
// engine parked with a terminal
// accelerator error is reported through EngineHealth.Err rather than as a
// stall (its flight dump already fired when it parked).
//
// Components that are not Engines — scheduler workers, socket pumps — join
// the same detection through WatchProbe, supplying a monotone progress
// counter and a pending-work predicate of their own.
//
// All methods are safe for concurrent use.
type Watchdog struct {
	window    time.Duration
	every     time.Duration
	onStall   func(StallEvent)
	onRecover func(StallEvent)
	flight    *FlightRecorder

	stalls     atomic.Uint64
	recoveries atomic.Uint64

	mu      sync.Mutex
	watched map[string]*watchEntry

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// Probe is one generic liveness sample, returned by a WatchProbe callback.
// Progress is any monotone work counter (a component whose counter stops
// advancing while Pending is true for a whole window is declared stalled);
// Err marks the component parked on a terminal error.
type Probe struct {
	Progress  uint64
	Pending   bool
	Err       error
	Recovered uint64 // optional: blocks recovered after retries (flaky but alive)
}

// watchEntry is one watched component's progress bookkeeping. Engines and
// generic probes share the same entry: Watch wraps the engine's counters into
// a probe function.
type watchEntry struct {
	probe        func() Probe
	lastProgress uint64
	lastMove     time.Time
	stalled      bool
}

// StallEvent describes one detected stall.
type StallEvent struct {
	Engine string        // the name given to Watch
	Idle   time.Duration // how long the engine made no progress despite pending input
}

// EngineHealth is one watched engine's liveness snapshot, served by
// /healthz when the watchdog is wired into an obsrv server.
type EngineHealth struct {
	Engine    string
	Err       error         // terminal accelerator error; the engine has parked
	Stalled   bool          // no progress for a window with work pending
	Idle      time.Duration // time since progress was last observed
	Recovered uint64        // blocks recovered via WithRetry — flaky but alive
}

// WatchdogOption tunes NewWatchdog.
type WatchdogOption func(*Watchdog)

// WithStallCallback invokes fn (on the watchdog goroutine) each time an
// engine transitions into the stalled state.
func WithStallCallback(fn func(StallEvent)) WatchdogOption {
	return func(w *Watchdog) { w.onStall = fn }
}

// WithRecoveryCallback invokes fn (on the watchdog goroutine) each time a
// stalled engine makes progress again — the other edge of the stall state
// machine, so an event plane records the full stall→recover interval rather
// than a one-sided alarm. The event's Idle is how long the stall lasted, from
// the last observed progress to the recovering scan.
func WithRecoveryCallback(fn func(StallEvent)) WatchdogOption {
	return func(w *Watchdog) { w.onRecover = fn }
}

// WithStallDump dumps the flight recorder's ring (FlightRecorder.AutoDump)
// each time a stall is detected.
func WithStallDump(f *FlightRecorder) WatchdogOption {
	return func(w *Watchdog) { w.flight = f }
}

// WithPollEvery sets the sampling period (default window/4, floor 1ms).
func WithPollEvery(d time.Duration) WatchdogOption {
	return func(w *Watchdog) { w.every = d }
}

// NewWatchdog starts a monitor that declares a watched engine stalled after
// `window` without progress while input is pending. Stop it with Stop.
func NewWatchdog(window time.Duration, opts ...WatchdogOption) *Watchdog {
	if window <= 0 {
		window = time.Second
	}
	w := &Watchdog{
		window:  window,
		watched: make(map[string]*watchEntry),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, o := range opts {
		o(w)
	}
	if w.every <= 0 {
		w.every = window / 4
	}
	if w.every < time.Millisecond {
		w.every = time.Millisecond
	}
	go w.run()
	return w
}

// Watch adds (or replaces) an engine under the given name. The engine starts
// in the healthy state with its progress clock at now. Pending work is words
// queued in the engine's input fifo or words already drained into its private
// batch buffer but not yet processed (WordsIn counts words handed to
// processing; Blocks counts blocks completed — an engine wedged inside
// Process holds the difference).
func (w *Watchdog) Watch(name string, e *Engine) {
	inWords := uint64(e.acc.InWords())
	w.WatchProbe(name, func() Probe {
		s := e.StatsDetail()
		return Probe{
			// Monotone counters: any progress strictly increases the sum.
			Progress:  s.WordsIn + s.WordsOut + s.Blocks,
			Pending:   e.in.Len() > 0 || s.WordsIn > s.Blocks*inWords,
			Err:       e.Err(),
			Recovered: s.Recovered,
		}
	})
}

// WatchProbe adds (or replaces) a generic component under the given name —
// how non-Engine components (scheduler workers, pumps) join the same stall
// detection and /healthz reporting as engines. fn is called on the watchdog
// goroutine every sampling period and must be safe to call at any time.
func (w *Watchdog) WatchProbe(name string, fn func() Probe) {
	p := fn()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.watched[name] = &watchEntry{
		probe: fn, lastProgress: p.Progress, lastMove: time.Now(),
	}
}

// Unwatch removes an engine; unknown names are ignored.
func (w *Watchdog) Unwatch(name string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.watched, name)
}

// Stalls returns how many stall transitions have been detected.
func (w *Watchdog) Stalls() uint64 { return w.stalls.Load() }

// Recoveries returns how many stalled engines have resumed progress.
func (w *Watchdog) Recoveries() uint64 { return w.recoveries.Load() }

// Stop halts the monitor goroutine. Idempotent; returns once it has exited.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

// Health snapshots every watched engine's liveness, sorted by name — the
// /healthz payload.
func (w *Watchdog) Health() []EngineHealth {
	now := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]EngineHealth, 0, len(w.watched))
	for name, en := range w.watched {
		p := en.probe()
		out = append(out, EngineHealth{
			Engine:    name,
			Err:       p.Err,
			Stalled:   en.stalled,
			Idle:      now.Sub(en.lastMove),
			Recovered: p.Recovered,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Engine < out[j].Engine })
	return out
}

// run is the monitor loop.
func (w *Watchdog) run() {
	defer close(w.done)
	tick := time.NewTicker(w.every)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			w.scan(time.Now())
		}
	}
}

// scan samples every watched engine once. Stall and recovery events fire
// outside the watchdog lock so callbacks may call Health/Watch/Unwatch
// freely.
func (w *Watchdog) scan(now time.Time) {
	var fired, recovered []StallEvent
	w.mu.Lock()
	for name, en := range w.watched {
		p := en.probe()
		if p.Progress != en.lastProgress {
			if en.stalled {
				// Recovery edge: the component was declared stalled and has
				// now moved again.
				w.recoveries.Add(1)
				recovered = append(recovered, StallEvent{Engine: name, Idle: now.Sub(en.lastMove)})
			}
			en.lastProgress = p.Progress
			en.lastMove = now
			en.stalled = false
			continue
		}
		if p.Err != nil {
			continue // parked on a terminal error: reported via Health, not as a stall
		}
		if en.stalled || now.Sub(en.lastMove) < w.window || !p.Pending {
			continue
		}
		en.stalled = true
		w.stalls.Add(1)
		fired = append(fired, StallEvent{Engine: name, Idle: now.Sub(en.lastMove)})
	}
	w.mu.Unlock()
	for _, ev := range fired {
		if w.flight != nil {
			w.flight.AutoDump("watchdog: engine " + ev.Engine + " stalled for " + ev.Idle.String())
		}
		if w.onStall != nil {
			w.onStall(ev)
		}
	}
	for _, ev := range recovered {
		if w.onRecover != nil {
			w.onRecover(ev)
		}
	}
}

// RegisterWatchdog exposes the watchdog's counters under the given source
// name: total stall transitions, engines watched, and how many are currently
// stalled or parked with a terminal error.
func RegisterWatchdog(r *Registry, name string, w *Watchdog) {
	r.Register(name, func() []Metric {
		var stalled, parked uint64
		hs := w.Health()
		for _, h := range hs {
			if h.Stalled {
				stalled++
			}
			if h.Err != nil {
				parked++
			}
		}
		return []Metric{
			{Name: "stalls", Value: w.Stalls()},
			{Name: "recoveries", Value: w.Recoveries()},
			{Name: "watched", Value: uint64(len(hs))},
			{Name: "stalled", Value: stalled},
			{Name: "parked", Value: parked},
		}
	})
}
